//! `.ptrc` reader: footer-indexed chunk access, predicate pushdown,
//! deterministic parallel decode, and corruption-tolerant salvage.
//!
//! Opening a store reads only the fixed-size trailer and the footer; event
//! chunks are fetched and decoded on demand, so a query touching a small
//! time window of a huge trace reads a correspondingly small part of the
//! file. The reader counts decoded chunks ([`StoreReader::chunks_decoded`])
//! so tests — and the acceptance criteria — can assert pushdown actually
//! skips I/O rather than filtering after a full decode.
//!
//! Robustness contract: **no byte sequence panics the reader**. Every
//! decode failure is a typed [`StoreError`], and [`ReadPolicy`] decides
//! what happens next:
//!
//! - [`ReadPolicy::Strict`] (default) — the first corrupt structure aborts
//!   the operation with its typed error.
//! - [`ReadPolicy::Salvage`] — corrupt chunks are skipped with exact
//!   accounting (`chunks_skipped`, `events_lost`, first-error detail in
//!   [`QueryStats`]), and a missing or corrupt footer triggers a full
//!   rescan that rebuilds the index from the surviving chunks: v2 files
//!   are scanned for `PTCK` record headers and each candidate payload is
//!   admitted only if its CRC-32 and decode both pass; v1 files (no
//!   checksums, no record framing) are walked chunk-by-chunk from the
//!   front, recovering the longest cleanly-decoding prefix.
//!
//! Salvage keeps results deterministic: recovered chunks are processed in
//! file order, so analyses over a salvaged store are bit-identical at any
//! thread count to the same analyses over a store containing only the
//! surviving chunks.

use crate::columns::{ColumnBatch, DecodeScratch};
use crate::crc32::crc32;
use crate::error::StoreError;
use crate::format::{
    category_bit, decode_chunk_prefix, decode_chunk_verified, decode_footer, kind_bit,
    meta_from_events, trailer_len, ChunkMeta, Footer, CHUNK_HEADER_LEN, CHUNK_MAGIC, HEADER_LEN,
    MAGIC, VERSION, VERSION_V1,
};
use crate::writer::StoreWriter;
use pinpoint_trace::{Category, EventKind, MemEvent, Trace, TraceSink};
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// An event filter with chunk-level pushdown.
///
/// All set fields must match (conjunction); an unset field matches
/// everything. Ranges are inclusive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Predicate {
    /// Event time within `[lo, hi]`.
    pub time_range: Option<(u64, u64)>,
    /// Block id within `[lo, hi]`.
    pub block_range: Option<(u64, u64)>,
    /// Event kind within the mask (build with [`Predicate::with_kind`]).
    pub kind_mask: Option<u8>,
    /// Paper category within the mask (build with
    /// [`Predicate::with_category`]).
    pub category_mask: Option<u8>,
    /// Block size at least this many bytes.
    pub min_size: Option<u64>,
    /// Block size at most this many bytes.
    pub max_size: Option<u64>,
    /// Event carries exactly this op label. Pruned chunk-level via the v3
    /// label bitset (see [`ChunkMeta::label_bits`]).
    pub op_label: Option<u32>,
    /// Intra-block offset within `[lo, hi]`.
    pub offset_range: Option<(u64, u64)>,
}

impl Predicate {
    /// The match-everything predicate.
    pub fn any() -> Self {
        Self::default()
    }

    /// Restricts to events with `lo <= time_ns <= hi`.
    #[must_use]
    pub fn with_time_range(mut self, lo: u64, hi: u64) -> Self {
        self.time_range = Some((lo, hi));
        self
    }

    /// Restricts to events with `lo <= block id <= hi`.
    #[must_use]
    pub fn with_block_range(mut self, lo: u64, hi: u64) -> Self {
        self.block_range = Some((lo, hi));
        self
    }

    /// Adds `kind` to the accepted event kinds (first call restricts).
    #[must_use]
    pub fn with_kind(mut self, kind: EventKind) -> Self {
        *self.kind_mask.get_or_insert(0) |= kind_bit(kind);
        self
    }

    /// Adds `category` to the accepted paper categories (first call
    /// restricts).
    #[must_use]
    pub fn with_category(mut self, category: Category) -> Self {
        *self.category_mask.get_or_insert(0) |= category_bit(category);
        self
    }

    /// Restricts to blocks of at least `bytes`.
    #[must_use]
    pub fn with_min_size(mut self, bytes: u64) -> Self {
        self.min_size = Some(bytes);
        self
    }

    /// Restricts to blocks of at most `bytes`.
    #[must_use]
    pub fn with_max_size(mut self, bytes: u64) -> Self {
        self.max_size = Some(bytes);
        self
    }

    /// Restricts to events carrying exactly op label `label`.
    #[must_use]
    pub fn with_op_label(mut self, label: u32) -> Self {
        self.op_label = Some(label);
        self
    }

    /// Restricts to events with `lo <= offset <= hi`.
    #[must_use]
    pub fn with_offset_range(mut self, lo: u64, hi: u64) -> Self {
        self.offset_range = Some((lo, hi));
        self
    }

    /// The union (disjunctive hull) of two predicates: a predicate that
    /// matches every chunk either operand could match.
    ///
    /// Per field, the hull keeps a constraint only when **both** operands
    /// constrain it (an unset field already matches everything): time and
    /// block ranges widen to the enclosing range, kind/category masks OR,
    /// and `min_size` drops to the smaller bound. The result can be wider
    /// than the exact disjunction (two disjoint time windows hull to one
    /// window covering the gap), which is sound for pruning — it only ever
    /// decodes more, never less. The fused analysis engine folds all
    /// registered passes' predicates through this to prune chunks once for
    /// the whole pass set.
    #[must_use]
    pub fn union(&self, other: &Predicate) -> Predicate {
        fn hull(a: Option<(u64, u64)>, b: Option<(u64, u64)>) -> Option<(u64, u64)> {
            match (a, b) {
                (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
                _ => None,
            }
        }
        fn mask_union(a: Option<u8>, b: Option<u8>) -> Option<u8> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a | b),
                _ => None,
            }
        }
        Predicate {
            time_range: hull(self.time_range, other.time_range),
            block_range: hull(self.block_range, other.block_range),
            kind_mask: mask_union(self.kind_mask, other.kind_mask),
            category_mask: mask_union(self.category_mask, other.category_mask),
            min_size: match (self.min_size, other.min_size) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            max_size: match (self.max_size, other.max_size) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
            // exact labels have no join other than equality: two different
            // labels hull to "any label" (constraint dropped)
            op_label: match (self.op_label, other.op_label) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            offset_range: hull(self.offset_range, other.offset_range),
        }
    }

    /// Whether any event of a chunk with this index entry *could* match —
    /// `false` proves the chunk can be skipped without decoding.
    pub fn matches_chunk(&self, meta: &ChunkMeta) -> bool {
        if let Some((lo, hi)) = self.time_range {
            if meta.max_time_ns < lo || meta.min_time_ns > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.block_range {
            if meta.max_block < lo || meta.min_block > hi {
                return false;
            }
        }
        if let Some(mask) = self.kind_mask {
            if mask & meta.kind_mask == 0 {
                return false;
            }
        }
        if let Some(mask) = self.category_mask {
            if mask & meta.category_mask == 0 {
                return false;
            }
        }
        if let Some(min) = self.min_size {
            if meta.max_size < min {
                return false;
            }
        }
        if let Some(max) = self.max_size {
            if meta.min_size > max {
                return false;
            }
        }
        if let Some(label) = self.op_label {
            // bit 63 is the catch-all for labels >= 63 (see
            // [`ChunkMeta::label_bits`]); pre-v3 entries default to all
            // bits set, so nothing is ever wrongly pruned
            if meta.label_bits & (1u64 << u64::from(label).min(63)) == 0 {
                return false;
            }
        }
        if let Some((lo, hi)) = self.offset_range {
            if meta.max_offset < lo || meta.min_offset > hi {
                return false;
            }
        }
        true
    }

    /// Whether this predicate prunes the chunk *specifically because of*
    /// the v3 op-label bitset: the label bit misses while every other
    /// constraint would have let the chunk through. Feeds the
    /// `chunks_pruned_by_label` counters.
    pub fn pruned_by_label(&self, meta: &ChunkMeta) -> bool {
        let Some(label) = self.op_label else {
            return false;
        };
        if meta.label_bits & (1u64 << u64::from(label).min(63)) != 0 {
            return false;
        }
        let mut rest = *self;
        rest.op_label = None;
        rest.matches_chunk(meta)
    }

    /// Whether one event matches.
    pub fn matches_event(&self, e: &MemEvent) -> bool {
        if let Some((lo, hi)) = self.time_range {
            if e.time_ns < lo || e.time_ns > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.block_range {
            if e.block.0 < lo || e.block.0 > hi {
                return false;
            }
        }
        if let Some(mask) = self.kind_mask {
            if mask & kind_bit(e.kind) == 0 {
                return false;
            }
        }
        if let Some(mask) = self.category_mask {
            if mask & category_bit(e.mem_kind.category()) == 0 {
                return false;
            }
        }
        if let Some(min) = self.min_size {
            if (e.size as u64) < min {
                return false;
            }
        }
        if let Some(max) = self.max_size {
            if (e.size as u64) > max {
                return false;
            }
        }
        if let Some(label) = self.op_label {
            if e.op_label != Some(label) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.offset_range {
            if (e.offset as u64) < lo || (e.offset as u64) > hi {
                return false;
            }
        }
        true
    }
}

/// What a reader does when it meets corrupt bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Abort the operation with a typed [`StoreError`] at the first
    /// corrupt structure. The default.
    #[default]
    Strict,
    /// Skip corrupt chunks (with exact accounting in [`QueryStats`]) and
    /// rebuild the index by rescanning when the footer itself is damaged.
    /// I/O errors still abort: salvage tolerates bad bytes, not bad disks.
    Salvage,
}

/// How much work a query did, chunk-wise — and, under
/// [`ReadPolicy::Salvage`], exactly what was lost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunks in the store.
    pub chunks_total: usize,
    /// Chunks skipped via the footer index alone.
    pub chunks_pruned: usize,
    /// Of the pruned chunks, how many were skipped specifically because
    /// of the v3 op-label bitset (a pruning the coarser v1/v2 zone maps
    /// could not have made).
    pub chunks_pruned_by_label: usize,
    /// Chunks read and successfully decoded.
    pub chunks_decoded: usize,
    /// Chunks read but skipped as corrupt (always 0 under `Strict`).
    pub chunks_skipped: usize,
    /// Events lost with the skipped chunks, per the index counts.
    pub events_lost: u64,
    /// Detail of the first corruption encountered, in chunk order.
    pub first_error: Option<String>,
}

/// A query's matching events plus its work accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Matching events, in trace order.
    pub events: Vec<MemEvent>,
    /// Chunk accounting.
    pub stats: QueryStats,
}

/// What a footer rescan recovered (present on readers that had to
/// salvage; see [`StoreReader::salvage_summary`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageSummary {
    /// Chunks whose payload survived (CRC + decode in v2, clean decode in
    /// the v1 prefix walk).
    pub chunks_recovered: usize,
    /// Events in the recovered chunks.
    pub events_recovered: u64,
    /// True when the label table was lost with the footer and placeholder
    /// labels were synthesized for the ids events still reference.
    pub labels_synthesized: bool,
    /// True when boundary markers were lost with the footer.
    pub markers_lost: bool,
    /// The strict-open error that forced the rescan.
    pub reason: String,
}

/// One verified-bad chunk, as reported by [`StoreReader::verify_chunks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFault {
    /// Zero-based chunk ordinal.
    pub chunk: usize,
    /// Events lost with it, per the index count.
    pub events_lost: u64,
    /// The typed error, rendered.
    pub error: String,
}

/// What a [`StoreReader::scrub_into`] rewrite kept and dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Chunks in the source store.
    pub chunks_total: usize,
    /// Chunks copied into the output.
    pub chunks_kept: usize,
    /// Corrupt chunks dropped.
    pub chunks_skipped: usize,
    /// Events copied into the output.
    pub events_kept: u64,
    /// Events lost with the dropped chunks, per the index counts.
    pub events_lost: u64,
    /// Detail of the first corruption encountered, in chunk order.
    pub first_error: Option<String>,
}

/// A `.ptrc` reader over any seekable byte source.
#[derive(Debug)]
pub struct StoreReader<R: Read + Seek = BufReader<File>> {
    src: R,
    file_len: u64,
    version: u8,
    policy: ReadPolicy,
    footer: Footer,
    chunks_decoded: u64,
    salvage: Option<SalvageSummary>,
    /// Reusable decode buffers, recycled across scans so steady-state
    /// queries allocate nothing per chunk (see [`DecodeScratch`]).
    scratch_pool: Vec<DecodeScratch>,
    /// Cooperative cancellation, polled per scan wave (see
    /// [`StoreReader::set_cancel`]).
    cancel: crate::cancel::CancelToken,
}

impl StoreReader<BufReader<File>> {
    /// Opens a `.ptrc` file under [`ReadPolicy::Strict`].
    ///
    /// # Errors
    ///
    /// I/O errors, or a typed [`StoreError`] if the file is not a valid
    /// store.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::new(BufReader::new(File::open(path).map_err(StoreError::Io)?))
    }

    /// Opens a `.ptrc` file under the given policy.
    ///
    /// # Errors
    ///
    /// As [`StoreReader::new_with_policy`].
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        policy: ReadPolicy,
    ) -> Result<Self, StoreError> {
        Self::new_with_policy(
            BufReader::new(File::open(path).map_err(StoreError::Io)?),
            policy,
        )
    }
}

impl<R: Read + Seek> StoreReader<R> {
    /// Wraps a seekable source under [`ReadPolicy::Strict`], validating
    /// the header and loading the footer index.
    ///
    /// # Errors
    ///
    /// I/O errors, or a typed [`StoreError`] if the stream is not a valid
    /// store.
    pub fn new(src: R) -> Result<Self, StoreError> {
        Self::new_with_policy(src, ReadPolicy::Strict)
    }

    /// Wraps a seekable source under the given policy.
    ///
    /// Under [`ReadPolicy::Salvage`], a damaged footer/trailer does not
    /// fail the open: the file is rescanned and the index rebuilt from
    /// surviving chunks ([`StoreReader::salvage_summary`] reports what was
    /// recovered). The header (magic + version) must still be intact —
    /// without it there is no way to know how to interpret the bytes.
    ///
    /// # Errors
    ///
    /// I/O errors; a typed [`StoreError`] on corruption (under `Strict`)
    /// or on a damaged header (under either policy).
    pub fn new_with_policy(mut src: R, policy: ReadPolicy) -> Result<Self, StoreError> {
        let mut head = [0u8; HEADER_LEN];
        src.seek(SeekFrom::Start(0)).map_err(StoreError::Io)?;
        src.read_exact(&mut head)
            .map_err(|_| StoreError::Truncated(".ptrc header"))?;
        if &head[..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = head[4];
        if !(VERSION_V1..=VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let file_len = src.seek(SeekFrom::End(0)).map_err(StoreError::Io)?;
        match Self::load_footer_strict(&mut src, version, file_len) {
            Ok(footer) => Ok(StoreReader {
                src,
                file_len,
                version,
                policy,
                footer,
                chunks_decoded: 0,
                salvage: None,
                scratch_pool: Vec::new(),
                cancel: crate::cancel::CancelToken::never(),
            }),
            Err(e) if policy == ReadPolicy::Salvage && e.is_corruption() => {
                let (footer, summary) = Self::rescan(&mut src, version, e.to_string())?;
                Ok(StoreReader {
                    src,
                    file_len,
                    version,
                    policy,
                    footer,
                    chunks_decoded: 0,
                    salvage: Some(summary),
                    scratch_pool: Vec::new(),
                    cancel: crate::cancel::CancelToken::never(),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Reads and fully validates the trailer, footer, and chunk index.
    fn load_footer_strict(src: &mut R, version: u8, file_len: u64) -> Result<Footer, StoreError> {
        let tlen = trailer_len(version);
        if file_len < (HEADER_LEN + tlen) as u64 {
            return Err(StoreError::Truncated(".ptrc trailer"));
        }
        let mut trailer = vec![0u8; tlen];
        src.seek(SeekFrom::Start(file_len - tlen as u64))
            .map_err(StoreError::Io)?;
        src.read_exact(&mut trailer)
            .map_err(|_| StoreError::Truncated(".ptrc trailer"))?;
        if &trailer[tlen - 4..] != MAGIC {
            return Err(StoreError::Truncated("store (bad trailer magic)"));
        }
        let footer_start = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let footer_end = file_len - tlen as u64;
        if footer_start < HEADER_LEN as u64 || footer_start > footer_end {
            return Err(StoreError::Corrupt("footer offset out of range".into()));
        }
        let mut footer_bytes = vec![0u8; (footer_end - footer_start) as usize];
        src.seek(SeekFrom::Start(footer_start))
            .map_err(StoreError::Io)?;
        src.read_exact(&mut footer_bytes)
            .map_err(|_| StoreError::Truncated("footer"))?;
        if version >= 2 {
            let expected = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
            let got = crc32(&footer_bytes);
            if got != expected {
                return Err(StoreError::FooterChecksumMismatch { expected, got });
            }
        }
        let footer = decode_footer(&footer_bytes, version)?;
        Self::validate_index(&footer, version, footer_start)?;
        Ok(footer)
    }

    /// Bounds-checks every chunk index entry so no later read can trust a
    /// hostile offset or length (a corrupt `byte_len` would otherwise turn
    /// into an unbounded allocation).
    fn validate_index(footer: &Footer, version: u8, footer_start: u64) -> Result<(), StoreError> {
        let header_extra = if version >= 2 { CHUNK_HEADER_LEN } else { 0 } as u64;
        let mut prev_end = HEADER_LEN as u64;
        for (i, c) in footer.chunks.iter().enumerate() {
            let start = c.offset;
            let end = start.checked_add(c.byte_len);
            let in_bounds = start >= prev_end + header_extra
                && end.is_some_and(|e| e <= footer_start)
                && c.count > 0
                && c.min_time_ns <= c.max_time_ns
                && c.min_block <= c.max_block
                && c.min_offset <= c.max_offset;
            if !in_bounds {
                return Err(StoreError::Corrupt(format!(
                    "chunk {i} index entry out of bounds"
                )));
            }
            prev_end = end.expect("checked above");
        }
        Ok(())
    }

    /// Rebuilds the footer from the file's surviving chunks. v2: scan for
    /// `PTCK` record headers, admitting payloads whose CRC and decode both
    /// pass. v1: walk payloads from the front, keeping the longest cleanly
    /// decoding prefix (v1 has no per-chunk framing to resynchronize on).
    fn rescan(
        src: &mut R,
        version: u8,
        reason: String,
    ) -> Result<(Footer, SalvageSummary), StoreError> {
        let mut data = Vec::new();
        src.seek(SeekFrom::Start(0)).map_err(StoreError::Io)?;
        src.read_to_end(&mut data).map_err(StoreError::Io)?;

        let mut chunks = Vec::new();
        let mut total_events = 0u64;
        let mut max_label: Option<u32> = None;
        let mut admit = |events: &[MemEvent], offset: usize, byte_len: usize, crc: u32| {
            let mut meta = meta_from_events(events);
            meta.offset = offset as u64;
            meta.byte_len = byte_len as u64;
            meta.crc32 = crc;
            total_events += events.len() as u64;
            for e in events {
                if let Some(op) = e.op_label {
                    max_label = Some(max_label.map_or(op, |m| m.max(op)));
                }
            }
            chunks.push(meta);
        };

        if version >= 2 {
            let mut pos = HEADER_LEN;
            while pos + CHUNK_HEADER_LEN <= data.len() {
                if &data[pos..pos + 4] != CHUNK_MAGIC.as_slice() {
                    pos += 1;
                    continue;
                }
                let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"))
                    as usize;
                let crc = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().expect("4 bytes"));
                let start = pos + CHUNK_HEADER_LEN;
                let Some(end) = start.checked_add(len).filter(|&e| e <= data.len()) else {
                    pos += 1;
                    continue;
                };
                let payload = &data[start..end];
                if crc32(payload) != crc {
                    pos += 1;
                    continue;
                }
                match crate::format::decode_chunk(payload, version) {
                    Ok(events) if !events.is_empty() => {
                        admit(&events, start, len, crc);
                        pos = end;
                    }
                    _ => pos += 1,
                }
            }
        } else {
            let mut pos = HEADER_LEN;
            while pos < data.len() {
                match decode_chunk_prefix(&data[pos..], version) {
                    Ok((events, consumed)) if !events.is_empty() => {
                        admit(&events, pos, consumed, 0);
                        pos += consumed;
                    }
                    _ => break,
                }
            }
        }

        // events may reference op-label ids whose table died with the
        // footer; synthesize placeholders so they stay resolvable
        let labels_synthesized = max_label.is_some();
        let labels = match max_label {
            Some(max) => (0..=max).map(|i| format!("lost-label:{i}")).collect(),
            None => Vec::new(),
        };
        let summary = SalvageSummary {
            chunks_recovered: chunks.len(),
            events_recovered: total_events,
            labels_synthesized,
            markers_lost: true,
            reason,
        };
        let footer = Footer {
            labels,
            markers: Vec::new(),
            chunks,
            total_events,
        };
        Ok((footer, summary))
    }

    /// The active read policy.
    pub fn policy(&self) -> ReadPolicy {
        self.policy
    }

    /// Switches the read policy for subsequent operations. (Switching to
    /// `Salvage` after a strict open does not retroactively rescan a bad
    /// footer — reopen with [`StoreReader::new_with_policy`] for that.)
    pub fn set_policy(&mut self, policy: ReadPolicy) {
        self.policy = policy;
    }

    /// Installs a cooperative [`CancelToken`](crate::CancelToken) polled
    /// at wave boundaries by [`StoreReader::scan_chunks`] (and everything
    /// built on it: [`StoreReader::query`],
    /// [`StoreReader::for_each_event`], the fused engine). Once the token
    /// fires, the scan stops decoding mid-store and returns
    /// [`StoreError::Cancelled`] — under any read policy, because an
    /// abandoned request is not a damaged store. The reader stays fully
    /// reusable afterwards.
    pub fn set_cancel(&mut self, token: crate::cancel::CancelToken) {
        self.cancel = token;
    }

    /// The store's format version byte.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Present when the open had to rebuild the index by rescanning.
    pub fn salvage_summary(&self) -> Option<&SalvageSummary> {
        self.salvage.as_ref()
    }

    /// The footer: labels, markers, and the chunk index.
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Total store size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.footer.chunks.len()
    }

    /// Total events across all chunks.
    pub fn total_events(&self) -> u64 {
        self.footer.total_events
    }

    /// Cumulative count of chunks this reader has fetched for decode.
    pub fn chunks_decoded(&self) -> u64 {
        self.chunks_decoded
    }

    /// Cumulative count of buffer growths across this reader's decode
    /// scratch pool. Once a scan has warmed the pool, repeating the same
    /// scan leaves this unchanged — the zero-allocations-per-chunk
    /// property the acceptance tests assert.
    pub fn decode_reallocs(&self) -> u64 {
        self.scratch_pool.iter().map(|s| s.realloc_count()).sum()
    }

    /// Whether per-chunk CRCs exist to verify (v2+ stores).
    fn verify_crc(&self) -> bool {
        self.version >= 2
    }

    /// Reads chunk `i`'s payload into the scratch's raw buffer (no
    /// allocation once the buffer has grown to the largest chunk).
    fn read_chunk_into(&mut self, i: usize, scratch: &mut DecodeScratch) -> Result<(), StoreError> {
        let meta = self
            .footer
            .chunks
            .get(i)
            .copied()
            .ok_or(StoreError::ChunkOutOfRange {
                chunk: i,
                chunks: self.footer.chunks.len(),
            })?;
        // byte_len was bounds-checked against the file at open, so this
        // buffer is capped by the file size
        let buf = scratch.raw_for(meta.byte_len as usize);
        self.src
            .seek(SeekFrom::Start(meta.offset))
            .map_err(StoreError::Io)?;
        self.src.read_exact(buf).map_err(StoreError::Io)?;
        Ok(())
    }

    /// The zero-alloc scan driver every bulk consumer sits on: fetches
    /// `candidates` in waves (sequential I/O into pooled [`DecodeScratch`]
    /// buffers), decodes and maps them on `threads` worker threads, and
    /// folds the results **in candidate order** — so output is
    /// bit-identical at every thread count.
    ///
    /// The pool assigns each wave position the same scratch slot on every
    /// scan (not last-in-first-out), so a repeated scan hands every chunk
    /// a buffer that already fit it last time: after one warm-up pass an
    /// identical scan allocates nothing per chunk
    /// ([`StoreReader::decode_reallocs`]).
    ///
    /// `map` runs on worker threads against the borrowed [`ColumnBatch`]
    /// and must be pure; `fold` runs on the calling thread and sees each
    /// chunk's map result — or its decode error, which it can swallow
    /// (salvage) or propagate.
    ///
    /// Every fetched candidate counts toward
    /// [`StoreReader::chunks_decoded`].
    ///
    /// # Errors
    ///
    /// I/O errors, [`StoreError::ChunkOutOfRange`], or whatever `fold`
    /// propagates.
    pub fn scan_chunks<T, M, F>(
        &mut self,
        candidates: &[usize],
        threads: usize,
        map: M,
        mut fold: F,
    ) -> Result<(), StoreError>
    where
        T: Send,
        M: Fn(usize, &ChunkMeta, &ColumnBatch) -> T + Sync,
        F: FnMut(usize, &ChunkMeta, Result<T, StoreError>) -> Result<(), StoreError>,
    {
        let version = self.version;
        let verify = self.verify_crc();
        let wave = threads.max(1) * 4;
        let _scan_span = pinpoint_obs::tracer().span_with("store.scan", candidates.len() as u64);
        for window in candidates.chunks(wave.max(1)) {
            // cooperative checkpoint: a fired token abandons the scan at
            // the next wave boundary instead of decoding the rest of the
            // store for an answer nobody will read
            self.cancel.check()?;
            if self.scratch_pool.len() < window.len() {
                self.scratch_pool
                    .resize_with(window.len(), DecodeScratch::default);
            }
            let mut items = Vec::with_capacity(window.len());
            for (slot, &i) in window.iter().enumerate() {
                let _read_span = pinpoint_obs::tracer().span_with("store.read", i as u64);
                let mut scratch = std::mem::take(&mut self.scratch_pool[slot]);
                let read = self.read_chunk_into(i, &mut scratch);
                let meta = self.footer.chunks[i];
                items.push((slot, i, meta, scratch, read));
            }
            self.chunks_decoded += window.len() as u64;
            let mapped = pinpoint_parallel::map_ordered(
                items,
                threads,
                |(slot, i, meta, mut scratch, read)| {
                    let chunk_span = pinpoint_obs::tracer().span_with("store.chunk", i as u64);
                    let res = read
                        .and_then(|()| scratch.decode_verified(&meta, i, version, verify))
                        .map(|()| {
                            let _fold_span =
                                pinpoint_obs::tracer().span_with("store.fold", i as u64);
                            map(i, &meta, scratch.batch())
                        });
                    drop(chunk_span);
                    (slot, i, meta, res, scratch)
                },
            );
            for (slot, i, meta, res, scratch) in mapped {
                self.scratch_pool[slot] = scratch;
                match res {
                    // an I/O failure aborts regardless of what fold would
                    // tolerate: salvage forgives bad bytes, not bad disks
                    Err(e) if !e.is_corruption() => return Err(e),
                    res => fold(i, &meta, res)?,
                }
            }
        }
        Ok(())
    }

    fn read_chunk_bytes(&mut self, i: usize) -> Result<Vec<u8>, StoreError> {
        let meta = self
            .footer
            .chunks
            .get(i)
            .copied()
            .ok_or(StoreError::ChunkOutOfRange {
                chunk: i,
                chunks: self.footer.chunks.len(),
            })?;
        // byte_len was bounds-checked against the file at open, so this
        // allocation is capped by the file size
        let mut bytes = vec![0u8; meta.byte_len as usize];
        self.src
            .seek(SeekFrom::Start(meta.offset))
            .map_err(StoreError::Io)?;
        self.src.read_exact(&mut bytes).map_err(StoreError::Io)?;
        Ok(bytes)
    }

    /// Reads the raw encoded payloads of a batch of chunks, in the given
    /// order, with one sequential I/O pass — the batch-decode entry point
    /// for the fused analysis engine, which verifies and decodes the
    /// returned buffers on its own worker threads via
    /// [`crate::format::decode_chunk_verified`].
    ///
    /// Every returned chunk counts toward [`StoreReader::chunks_decoded`]:
    /// callers of this API hand each buffer to the decoder exactly once,
    /// so fetched and decoded are the same tally.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`StoreError::ChunkOutOfRange`].
    pub fn read_chunk_batch(&mut self, indices: &[usize]) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut raw = Vec::with_capacity(indices.len());
        for &i in indices {
            raw.push(self.read_chunk_bytes(i)?);
        }
        self.chunks_decoded += indices.len() as u64;
        Ok(raw)
    }

    /// Reads, verifies (CRC on v2), and decodes chunk `i`.
    ///
    /// Always strict about *this* chunk — policy-aware iteration (skip and
    /// account) lives in [`StoreReader::query`],
    /// [`StoreReader::for_each_event`], and the fused engine.
    ///
    /// # Errors
    ///
    /// I/O errors, or a typed [`StoreError`] on corruption (checksum,
    /// malformed payload, or an event count that disagrees with the
    /// index).
    pub fn decode_chunk_events(&mut self, i: usize) -> Result<Vec<MemEvent>, StoreError> {
        let bytes = self.read_chunk_bytes(i)?;
        let meta = self.footer.chunks[i];
        let events = decode_chunk_verified(&bytes, &meta, i, self.verify_crc(), self.version)?;
        self.chunks_decoded += 1;
        Ok(events)
    }

    /// Streams every event, in trace order, through `f` — one chunk
    /// resident at a time, never the full trace. Under
    /// [`ReadPolicy::Salvage`], corrupt chunks are silently skipped (use
    /// [`StoreReader::query`] or [`StoreReader::scrub_into`] when the loss
    /// accounting matters).
    ///
    /// # Errors
    ///
    /// I/O errors; corruption errors under [`ReadPolicy::Strict`].
    pub fn for_each_event(&mut self, mut f: impl FnMut(MemEvent)) -> Result<(), StoreError> {
        for i in 0..self.num_chunks() {
            match self.decode_chunk_events(i) {
                Ok(events) => {
                    for e in events {
                        f(e);
                    }
                }
                Err(e) if self.policy == ReadPolicy::Salvage && e.is_corruption() => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Runs a filtered query: prunes chunks via the footer index, decodes
    /// the survivors (fanned out over `threads` worker threads when
    /// `threads > 1`), and filters events. Output order — and every byte
    /// of it — is identical at every thread count; under
    /// [`ReadPolicy::Salvage`] that includes the loss accounting, because
    /// per-chunk verdicts are folded in file order.
    ///
    /// # Errors
    ///
    /// I/O errors; corruption errors under [`ReadPolicy::Strict`].
    pub fn query(&mut self, pred: &Predicate, threads: usize) -> Result<QueryResult, StoreError> {
        let _query_span = pinpoint_obs::tracer().span("store.query");
        let mut candidates = Vec::new();
        let mut stats = QueryStats {
            chunks_total: self.num_chunks(),
            ..QueryStats::default()
        };
        {
            let _prune_span = pinpoint_obs::tracer().span("store.prune");
            for (i, meta) in self.footer.chunks.iter().enumerate() {
                if pred.matches_chunk(meta) {
                    candidates.push(i);
                } else if pred.pruned_by_label(meta) {
                    stats.chunks_pruned_by_label += 1;
                }
            }
        }
        stats.chunks_pruned = self.num_chunks() - candidates.len();
        let pred = *pred;
        let salvage = self.policy == ReadPolicy::Salvage;
        let mut events = Vec::new();
        self.scan_chunks(
            &candidates,
            threads,
            |_, _, batch| {
                (0..batch.len())
                    .map(|k| batch.event(k))
                    .filter(|e| pred.matches_event(e))
                    .collect::<Vec<_>>()
            },
            |_, meta, res| {
                match res {
                    Ok(matched) => {
                        stats.chunks_decoded += 1;
                        events.extend(matched);
                    }
                    Err(e) if salvage && e.is_corruption() => {
                        stats.chunks_skipped += 1;
                        stats.events_lost += meta.count;
                        if stats.first_error.is_none() {
                            stats.first_error = Some(e.to_string());
                        }
                    }
                    Err(e) => return Err(e),
                }
                Ok(())
            },
        )?;
        Ok(QueryResult { events, stats })
    }

    /// Verifies every chunk (CRC on v2, full decode on both versions)
    /// without keeping events, returning one [`ChunkFault`] per bad chunk.
    /// An empty result means the store's event data is fully intact.
    ///
    /// # Errors
    ///
    /// I/O errors only — corruption is the *result*, not a failure.
    pub fn verify_chunks(&mut self) -> Result<Vec<ChunkFault>, StoreError> {
        let mut faults = Vec::new();
        for i in 0..self.num_chunks() {
            match self.decode_chunk_events(i) {
                Ok(_) => {}
                Err(e) if e.is_corruption() => faults.push(ChunkFault {
                    chunk: i,
                    events_lost: self.footer.chunks[i].count,
                    error: e.to_string(),
                }),
                Err(e) => return Err(e),
            }
        }
        Ok(faults)
    }

    /// Rewrites this store's surviving content into `out`, dropping
    /// corrupt chunks (regardless of policy — scrubbing *is* the salvage).
    /// Labels are preserved; markers are re-emitted with their event
    /// indices remapped past any lost ranges (a marker inside a lost range
    /// lands at the boundary). The caller finishes `out` when done.
    ///
    /// # Errors
    ///
    /// I/O errors from either side.
    pub fn scrub_into<W: Write>(
        &mut self,
        out: &mut StoreWriter<W>,
    ) -> Result<ScrubStats, StoreError> {
        for l in &self.footer.labels.clone() {
            out.intern_label(l);
        }
        let markers = self.footer.markers.clone();
        let mut stats = ScrubStats {
            chunks_total: self.num_chunks(),
            ..ScrubStats::default()
        };
        let mut next_marker = 0usize;
        let mut orig_index = 0u64; // position in the original event stream
        for i in 0..self.num_chunks() {
            let count = self.footer.chunks[i].count;
            match self.decode_chunk_events(i) {
                Ok(events) => {
                    stats.chunks_kept += 1;
                    for e in events {
                        while next_marker < markers.len()
                            && (markers[next_marker].event_index as u64) <= orig_index
                        {
                            let m = &markers[next_marker];
                            out.record_marker(m.time_ns, &m.label);
                            next_marker += 1;
                        }
                        out.record_event(e);
                        orig_index += 1;
                        stats.events_kept += 1;
                    }
                }
                Err(e) if e.is_corruption() => {
                    stats.chunks_skipped += 1;
                    stats.events_lost += count;
                    if stats.first_error.is_none() {
                        stats.first_error = Some(e.to_string());
                    }
                    // markers inside this range are emitted by the next
                    // kept chunk's loop (or the final flush) at the
                    // boundary position — exactly the remap we want
                    orig_index += count;
                }
                Err(e) => return Err(e),
            }
        }
        for m in &markers[next_marker..] {
            out.record_marker(m.time_ns, &m.label);
        }
        Ok(stats)
    }

    /// Materializes the full in-memory [`Trace`] (events, markers, label
    /// table) — the bridge back to every existing `&Trace` analysis.
    ///
    /// Under [`ReadPolicy::Salvage`], corrupt chunks are skipped and any
    /// marker pointing past the surviving events is clamped to the end of
    /// the stream.
    ///
    /// # Errors
    ///
    /// I/O errors; corruption errors under [`ReadPolicy::Strict`].
    pub fn read_trace(&mut self) -> Result<Trace, StoreError> {
        let mut trace = Trace::new();
        for l in &self.footer.labels {
            trace.intern_label(l);
        }
        let markers = self.footer.markers.clone();
        let salvage = self.policy == ReadPolicy::Salvage;
        self.for_each_event(|e| trace.push(e))?;
        for mut m in markers {
            if m.event_index > trace.len() {
                if !salvage {
                    return Err(StoreError::Corrupt(format!(
                        "marker `{}` points past the event stream",
                        m.label
                    )));
                }
                m.event_index = trace.len();
            }
            trace.push_marker(m);
        }
        Ok(trace)
    }

    /// Dismantles the reader into its byte source and validated metadata —
    /// the handoff into [`crate::SharedStoreReader`], which rebuilds the
    /// same state around a positional (seek-free) source.
    pub(crate) fn into_parts(self) -> (R, ReaderParts) {
        (
            self.src,
            ReaderParts {
                file_len: self.file_len,
                version: self.version,
                policy: self.policy,
                footer: self.footer,
                salvage: self.salvage,
            },
        )
    }
}

/// The validated open-time state of a [`StoreReader`], minus its source.
pub(crate) struct ReaderParts {
    pub(crate) file_len: u64,
    pub(crate) version: u8,
    pub(crate) policy: ReadPolicy,
    pub(crate) footer: Footer,
    pub(crate) salvage: Option<SalvageSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_store_chunked, write_store_chunked_v1, StoreWriter};
    use pinpoint_trace::{BlockId, EventKind, MemoryKind, TraceSink};
    use std::io::Cursor;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let op = t.intern_label("op.k");
        for i in 0..100u64 {
            t.record(
                i * 10,
                EventKind::Malloc,
                BlockId(i),
                (i as usize + 1) * 16,
                (i as usize) * 64,
                MemoryKind::Activation,
                None,
            );
            t.record(
                i * 10 + 5,
                EventKind::Write,
                BlockId(i),
                (i as usize + 1) * 16,
                (i as usize) * 64,
                MemoryKind::Activation,
                Some(op),
            );
            if i % 10 == 0 {
                t.mark(i * 10, format!("iter:{}", i / 10));
            }
        }
        t
    }

    fn store_bytes(trace: &Trace, chunk_events: usize) -> Vec<u8> {
        let mut out = Vec::new();
        write_store_chunked(trace, &mut out, chunk_events).unwrap();
        out
    }

    #[test]
    fn round_trips_trace_exactly() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.version(), VERSION);
        assert_eq!(r.total_events(), t.len() as u64);
        let back = r.read_trace().unwrap();
        assert_eq!(back.events(), t.events());
        assert_eq!(back.markers(), t.markers());
        assert_eq!(back.labels(), t.labels());
    }

    #[test]
    fn a_fired_cancel_token_aborts_a_scan_and_leaves_the_reader_usable() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        let full = r.query(&Predicate::any(), 1).unwrap().events.len();

        // fire after the first wave: the scan must stop mid-store
        let polls = Arc::new(AtomicU64::new(0));
        let token = {
            let polls = Arc::clone(&polls);
            crate::cancel::CancelToken::new(move || polls.fetch_add(1, Ordering::Relaxed) >= 1)
        };
        r.set_cancel(token);
        let err = r.query(&Predicate::any(), 1).unwrap_err();
        assert!(matches!(err, StoreError::Cancelled), "{err}");
        // salvage mode must also abort, not skip-and-account
        r.set_policy(ReadPolicy::Salvage);
        let err = r.query(&Predicate::any(), 1).unwrap_err();
        assert!(matches!(err, StoreError::Cancelled), "{err}");

        // disarm: the reader answers fully again, bit-identically
        r.set_cancel(crate::cancel::CancelToken::never());
        r.set_policy(ReadPolicy::Strict);
        assert_eq!(r.query(&Predicate::any(), 1).unwrap().events.len(), full);

        // an armed-but-quiet token costs nothing and cancels nothing
        let flag = Arc::new(AtomicBool::new(false));
        let quiet = {
            let flag = Arc::clone(&flag);
            crate::cancel::CancelToken::new(move || flag.load(Ordering::Relaxed))
        };
        r.set_cancel(quiet);
        assert_eq!(r.query(&Predicate::any(), 1).unwrap().events.len(), full);
    }

    #[test]
    fn v1_stores_still_read_exactly() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_store_chunked_v1(&t, &mut bytes, 16).unwrap();
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.version(), VERSION_V1);
        assert_eq!(r.read_trace().unwrap(), t);
    }

    #[test]
    fn time_range_query_prunes_chunks() {
        let t = sample_trace(); // 200 events, times 0..=995
        let bytes = store_bytes(&t, 16);
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        let pred = Predicate::any().with_time_range(0, 50);
        let q = r.query(&pred, 1).unwrap();
        assert!(q.stats.chunks_total > 4);
        assert!(
            q.stats.chunks_decoded <= 2,
            "tiny time window should decode at most a chunk or two, got {:?}",
            q.stats
        );
        let expect: Vec<_> = t
            .events()
            .iter()
            .filter(|e| e.time_ns <= 50)
            .cloned()
            .collect();
        assert_eq!(q.events, expect);
    }

    #[test]
    fn queries_are_thread_count_invariant() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 8);
        let preds = [
            Predicate::any(),
            Predicate::any().with_kind(EventKind::Write),
            Predicate::any().with_block_range(10, 20),
            Predicate::any().with_min_size(800),
            Predicate::any()
                .with_time_range(100, 700)
                .with_category(Category::Intermediates),
        ];
        for pred in preds {
            let mut r1 = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
            let mut rn = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
            let a = r1.query(&pred, 1).unwrap();
            let b = rn.query(&pred, 8).unwrap();
            assert_eq!(a, b, "{pred:?}");
            let expect: Vec<_> = t
                .events()
                .iter()
                .filter(|e| pred.matches_event(e))
                .cloned()
                .collect();
            assert_eq!(a.events, expect, "{pred:?}");
        }
    }

    #[test]
    fn category_and_kind_pushdown_skip_disjoint_chunks() {
        // chunk 1: parameters only; chunk 2: input only
        let mut t = Trace::new();
        for i in 0..8u64 {
            t.record(
                i,
                EventKind::Malloc,
                BlockId(i),
                64,
                0,
                MemoryKind::Weight,
                None,
            );
        }
        for i in 8..16u64 {
            t.record(
                i,
                EventKind::Read,
                BlockId(i - 8),
                64,
                0,
                MemoryKind::Weight,
                None,
            );
        }
        let bytes = store_bytes(&t, 8);
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        let q = r
            .query(&Predicate::any().with_kind(EventKind::Read), 1)
            .unwrap();
        assert_eq!(q.stats.chunks_total, 2);
        assert_eq!(q.stats.chunks_pruned, 1);
        assert_eq!(q.events.len(), 8);
        let q = r
            .query(&Predicate::any().with_category(Category::InputData), 1)
            .unwrap();
        assert_eq!(q.stats.chunks_decoded, 0, "no input-data chunk at all");
        assert!(q.events.is_empty());
    }

    #[test]
    fn predicate_union_is_a_sound_hull() {
        let a = Predicate::any()
            .with_time_range(0, 100)
            .with_kind(EventKind::Malloc)
            .with_min_size(512);
        let b = Predicate::any()
            .with_time_range(400, 900)
            .with_kind(EventKind::Free)
            .with_min_size(64);
        let u = a.union(&b);
        assert_eq!(u.time_range, Some((0, 900)));
        assert_eq!(
            u.kind_mask,
            Some(kind_bit(EventKind::Malloc) | kind_bit(EventKind::Free))
        );
        assert_eq!(u.min_size, Some(64));
        // a field either side leaves open is open in the union
        assert_eq!(u.block_range, None);
        assert_eq!(u.category_mask, None);
        // match-everything absorbs anything
        assert_eq!(a.union(&Predicate::any()), Predicate::any());
        // the hull matches every chunk either operand matches
        let t = sample_trace();
        let bytes = store_bytes(&t, 8);
        let r = StoreReader::new(Cursor::new(bytes)).unwrap();
        for meta in &r.footer().chunks {
            if a.matches_chunk(meta) || b.matches_chunk(meta) {
                assert!(u.matches_chunk(meta), "{meta:?}");
            }
        }
    }

    #[test]
    fn chunk_batch_read_matches_per_chunk_decode_and_counts() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let mut r = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
        let picks = [0usize, 3, 1];
        let raw = r.read_chunk_batch(&picks).unwrap();
        assert_eq!(r.chunks_decoded(), picks.len() as u64);
        let mut r2 = StoreReader::new(Cursor::new(bytes)).unwrap();
        for (bytes, &i) in raw.iter().zip(&picks) {
            assert_eq!(
                crate::format::decode_chunk(bytes, VERSION).unwrap(),
                r2.decode_chunk_events(i).unwrap(),
                "chunk {i}"
            );
        }
        assert!(r.read_chunk_batch(&[usize::MAX]).is_err());
    }

    #[test]
    fn rejects_corrupt_stores_with_typed_errors() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        // bad magic
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(matches!(
            StoreReader::new(Cursor::new(b)),
            Err(StoreError::BadMagic)
        ));
        // bad version
        let mut b = bytes.clone();
        b[4] = 99;
        assert!(matches!(
            StoreReader::new(Cursor::new(b)),
            Err(StoreError::UnsupportedVersion(99))
        ));
        // truncated trailer
        let b = bytes[..bytes.len() - 3].to_vec();
        assert!(StoreReader::new(Cursor::new(b)).is_err());
        // not a store at all
        assert!(matches!(
            StoreReader::new(Cursor::new(b"{\"events\":[]}".to_vec())),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn flipped_chunk_byte_is_a_checksum_error_in_strict() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let r = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
        let meta = r.footer().chunks[2];
        let mut b = bytes;
        b[meta.offset as usize + 3] ^= 0x40;
        let mut r = StoreReader::new(Cursor::new(b)).unwrap();
        match r.decode_chunk_events(2) {
            Err(StoreError::ChecksumMismatch { chunk: 2, .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn salvage_query_skips_corrupt_chunks_with_exact_accounting() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let pristine = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
        let broken = 3usize;
        let meta = pristine.footer().chunks[broken];
        let mut b = bytes;
        b[meta.offset as usize] ^= 0xFF;

        let mut r = StoreReader::new_with_policy(Cursor::new(b), ReadPolicy::Salvage).unwrap();
        assert!(r.salvage_summary().is_none(), "footer is fine");
        let q = r.query(&Predicate::any(), 1).unwrap();
        assert_eq!(q.stats.chunks_skipped, 1);
        assert_eq!(q.stats.events_lost, meta.count);
        assert!(q.stats.first_error.as_deref().unwrap().contains("chunk 3"));
        let expect: Vec<_> = t
            .events()
            .iter()
            .enumerate()
            .filter(|(i, _)| !(broken * 16..(broken + 1) * 16).contains(i))
            .map(|(_, e)| e.clone())
            .collect();
        assert_eq!(q.events, expect);
        // bit-identical accounting at several threads
        let q4 = r.query(&Predicate::any(), 4).unwrap();
        assert_eq!(q, q4);
    }

    #[test]
    fn salvage_rebuilds_index_from_chunks_when_footer_dies() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let pristine = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
        let n_chunks = pristine.num_chunks();
        let footer_start = pristine
            .footer()
            .chunks
            .last()
            .map(|c| c.offset + c.byte_len)
            .unwrap() as usize;
        // kill the whole footer + trailer
        let b = bytes[..footer_start].to_vec();

        assert!(StoreReader::new(Cursor::new(b.clone())).is_err());
        let mut r = StoreReader::new_with_policy(Cursor::new(b), ReadPolicy::Salvage).unwrap();
        let s = r.salvage_summary().unwrap().clone();
        assert_eq!(s.chunks_recovered, n_chunks);
        assert_eq!(s.events_recovered, t.len() as u64);
        assert!(s.markers_lost);
        assert!(s.labels_synthesized, "events reference op labels");
        let back = r.read_trace().unwrap();
        assert_eq!(back.events(), t.events());
        assert!(back.markers().is_empty());
    }

    #[test]
    fn salvage_of_truncated_v1_store_recovers_the_intact_prefix() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_store_chunked_v1(&t, &mut bytes, 16).unwrap();
        let pristine = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
        let chunks = pristine.footer().chunks.clone();
        // cut mid-way through chunk 4
        let cut = (chunks[4].offset + chunks[4].byte_len / 2) as usize;
        let b = bytes[..cut].to_vec();
        let mut r = StoreReader::new_with_policy(Cursor::new(b), ReadPolicy::Salvage).unwrap();
        assert_eq!(r.salvage_summary().unwrap().chunks_recovered, 4);
        let back = r.read_trace().unwrap();
        assert_eq!(back.events(), &t.events()[..4 * 16]);
    }

    #[test]
    fn scrub_drops_corrupt_chunks_and_remaps_markers() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let pristine = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
        let broken = 1usize;
        let meta = pristine.footer().chunks[broken];
        let mut b = bytes;
        b[meta.offset as usize + 1] ^= 0x08;

        let mut r = StoreReader::new_with_policy(Cursor::new(b), ReadPolicy::Salvage).unwrap();
        let mut w = StoreWriter::with_chunk_events(Vec::new(), 16).unwrap();
        let stats = r.scrub_into(&mut w).unwrap();
        w.finish().unwrap();
        assert_eq!(stats.chunks_kept, stats.chunks_total - 1);
        assert_eq!(stats.chunks_skipped, 1);
        assert_eq!(stats.events_kept, t.len() as u64 - meta.count);
        assert_eq!(stats.events_lost, meta.count);

        let mut back = StoreReader::new(Cursor::new(w.into_inner())).unwrap();
        assert!(back.verify_chunks().unwrap().is_empty());
        let scrubbed = back.read_trace().unwrap();
        let expect: Vec<_> = t
            .events()
            .iter()
            .enumerate()
            .filter(|(i, _)| !(broken * 16..(broken + 1) * 16).contains(i))
            .map(|(_, e)| e.clone())
            .collect();
        assert_eq!(scrubbed.events(), expect);
        assert_eq!(scrubbed.markers().len(), t.markers().len());
        // markers originally inside/after the lost range moved left by one
        // chunk of events; none point past the stream
        for m in scrubbed.markers() {
            assert!(m.event_index <= scrubbed.len());
        }
    }

    #[test]
    fn verify_chunks_pinpoints_damage() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let pristine = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
        let metas = pristine.footer().chunks.clone();
        let mut b = bytes;
        for broken in [2usize, 5] {
            b[metas[broken].offset as usize + 2] ^= 0x01;
        }
        let mut r = StoreReader::new(Cursor::new(b)).unwrap();
        let faults = r.verify_chunks().unwrap();
        assert_eq!(
            faults.iter().map(|f| f.chunk).collect::<Vec<_>>(),
            vec![2, 5]
        );
        assert_eq!(faults[0].events_lost, metas[2].count);
        assert!(faults[0].error.contains("checksum"));
    }

    #[test]
    fn streaming_writer_and_batch_writer_agree() {
        let t = sample_trace();
        let batch = store_bytes(&t, 16);
        let mut w = StoreWriter::with_chunk_events(Vec::new(), 16).unwrap();
        for l in t.labels() {
            w.intern_label(l);
        }
        let mut next_marker = 0usize;
        for (i, e) in t.events().iter().enumerate() {
            while next_marker < t.markers().len() && t.markers()[next_marker].event_index <= i {
                let m = &t.markers()[next_marker];
                w.record_marker(m.time_ns, &m.label);
                next_marker += 1;
            }
            w.record_event(e.clone());
        }
        w.finish().unwrap();
        assert_eq!(w.into_inner(), batch, "same bytes either way");
    }
}
