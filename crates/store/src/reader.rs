//! `.ptrc` reader: footer-indexed chunk access, predicate pushdown, and
//! deterministic parallel decode.
//!
//! Opening a store reads only the fixed-size trailer and the footer; event
//! chunks are fetched and decoded on demand, so a query touching a small
//! time window of a huge trace reads a correspondingly small part of the
//! file. The reader counts decoded chunks ([`StoreReader::chunks_decoded`])
//! so tests — and the acceptance criteria — can assert pushdown actually
//! skips I/O rather than filtering after a full decode.

use crate::format::{
    bad, category_bit, decode_chunk, decode_footer, kind_bit, ChunkMeta, Footer, MAGIC,
    TRAILER_LEN, VERSION,
};
use pinpoint_trace::{Category, EventKind, MemEvent, Trace};
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::Path;

/// An event filter with chunk-level pushdown.
///
/// All set fields must match (conjunction); an unset field matches
/// everything. Ranges are inclusive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Predicate {
    /// Event time within `[lo, hi]`.
    pub time_range: Option<(u64, u64)>,
    /// Block id within `[lo, hi]`.
    pub block_range: Option<(u64, u64)>,
    /// Event kind within the mask (build with [`Predicate::with_kind`]).
    pub kind_mask: Option<u8>,
    /// Paper category within the mask (build with
    /// [`Predicate::with_category`]).
    pub category_mask: Option<u8>,
    /// Block size at least this many bytes.
    pub min_size: Option<u64>,
}

impl Predicate {
    /// The match-everything predicate.
    pub fn any() -> Self {
        Self::default()
    }

    /// Restricts to events with `lo <= time_ns <= hi`.
    #[must_use]
    pub fn with_time_range(mut self, lo: u64, hi: u64) -> Self {
        self.time_range = Some((lo, hi));
        self
    }

    /// Restricts to events with `lo <= block id <= hi`.
    #[must_use]
    pub fn with_block_range(mut self, lo: u64, hi: u64) -> Self {
        self.block_range = Some((lo, hi));
        self
    }

    /// Adds `kind` to the accepted event kinds (first call restricts).
    #[must_use]
    pub fn with_kind(mut self, kind: EventKind) -> Self {
        *self.kind_mask.get_or_insert(0) |= kind_bit(kind);
        self
    }

    /// Adds `category` to the accepted paper categories (first call
    /// restricts).
    #[must_use]
    pub fn with_category(mut self, category: Category) -> Self {
        *self.category_mask.get_or_insert(0) |= category_bit(category);
        self
    }

    /// Restricts to blocks of at least `bytes`.
    #[must_use]
    pub fn with_min_size(mut self, bytes: u64) -> Self {
        self.min_size = Some(bytes);
        self
    }

    /// The union (disjunctive hull) of two predicates: a predicate that
    /// matches every chunk either operand could match.
    ///
    /// Per field, the hull keeps a constraint only when **both** operands
    /// constrain it (an unset field already matches everything): time and
    /// block ranges widen to the enclosing range, kind/category masks OR,
    /// and `min_size` drops to the smaller bound. The result can be wider
    /// than the exact disjunction (two disjoint time windows hull to one
    /// window covering the gap), which is sound for pruning — it only ever
    /// decodes more, never less. The fused analysis engine folds all
    /// registered passes' predicates through this to prune chunks once for
    /// the whole pass set.
    #[must_use]
    pub fn union(&self, other: &Predicate) -> Predicate {
        fn hull(a: Option<(u64, u64)>, b: Option<(u64, u64)>) -> Option<(u64, u64)> {
            match (a, b) {
                (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
                _ => None,
            }
        }
        fn mask_union(a: Option<u8>, b: Option<u8>) -> Option<u8> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a | b),
                _ => None,
            }
        }
        Predicate {
            time_range: hull(self.time_range, other.time_range),
            block_range: hull(self.block_range, other.block_range),
            kind_mask: mask_union(self.kind_mask, other.kind_mask),
            category_mask: mask_union(self.category_mask, other.category_mask),
            min_size: match (self.min_size, other.min_size) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
        }
    }

    /// Whether any event of a chunk with this index entry *could* match —
    /// `false` proves the chunk can be skipped without decoding.
    pub fn matches_chunk(&self, meta: &ChunkMeta) -> bool {
        if let Some((lo, hi)) = self.time_range {
            if meta.max_time_ns < lo || meta.min_time_ns > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.block_range {
            if meta.max_block < lo || meta.min_block > hi {
                return false;
            }
        }
        if let Some(mask) = self.kind_mask {
            if mask & meta.kind_mask == 0 {
                return false;
            }
        }
        if let Some(mask) = self.category_mask {
            if mask & meta.category_mask == 0 {
                return false;
            }
        }
        if let Some(min) = self.min_size {
            if meta.max_size < min {
                return false;
            }
        }
        true
    }

    /// Whether one event matches.
    pub fn matches_event(&self, e: &MemEvent) -> bool {
        if let Some((lo, hi)) = self.time_range {
            if e.time_ns < lo || e.time_ns > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.block_range {
            if e.block.0 < lo || e.block.0 > hi {
                return false;
            }
        }
        if let Some(mask) = self.kind_mask {
            if mask & kind_bit(e.kind) == 0 {
                return false;
            }
        }
        if let Some(mask) = self.category_mask {
            if mask & category_bit(e.mem_kind.category()) == 0 {
                return false;
            }
        }
        if let Some(min) = self.min_size {
            if (e.size as u64) < min {
                return false;
            }
        }
        true
    }
}

/// How much work a query did, chunk-wise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunks in the store.
    pub chunks_total: usize,
    /// Chunks skipped via the footer index alone.
    pub chunks_pruned: usize,
    /// Chunks actually read and decoded.
    pub chunks_decoded: usize,
}

/// A query's matching events plus its work accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Matching events, in trace order.
    pub events: Vec<MemEvent>,
    /// Chunk accounting.
    pub stats: QueryStats,
}

/// A `.ptrc` reader over any seekable byte source.
#[derive(Debug)]
pub struct StoreReader<R: Read + Seek = BufReader<File>> {
    src: R,
    file_len: u64,
    footer: Footer,
    chunks_decoded: u64,
}

impl StoreReader<BufReader<File>> {
    /// Opens a `.ptrc` file.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` if the file is not a valid store.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> StoreReader<R> {
    /// Wraps a seekable source, validating the header and loading the
    /// footer index.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` if the stream is not a valid store.
    pub fn new(mut src: R) -> io::Result<Self> {
        let mut head = [0u8; 5];
        src.seek(SeekFrom::Start(0))?;
        src.read_exact(&mut head)
            .map_err(|_| bad("file shorter than the .ptrc header"))?;
        if &head[..4] != MAGIC {
            return Err(bad("not a .ptrc store (bad magic)"));
        }
        if head[4] != VERSION {
            return Err(bad(format!(
                "unsupported .ptrc version {} (expected {VERSION})",
                head[4]
            )));
        }
        let file_len = src.seek(SeekFrom::End(0))?;
        if file_len < (5 + TRAILER_LEN) as u64 {
            return Err(bad("file shorter than the .ptrc trailer"));
        }
        let mut trailer = [0u8; TRAILER_LEN];
        src.seek(SeekFrom::Start(file_len - TRAILER_LEN as u64))?;
        src.read_exact(&mut trailer)?;
        if &trailer[8..] != MAGIC {
            return Err(bad("truncated store (bad trailer magic)"));
        }
        let footer_start = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let footer_end = file_len - TRAILER_LEN as u64;
        if footer_start < 5 || footer_start > footer_end {
            return Err(bad("footer offset out of range"));
        }
        let mut footer_bytes = vec![0u8; (footer_end - footer_start) as usize];
        src.seek(SeekFrom::Start(footer_start))?;
        src.read_exact(&mut footer_bytes)?;
        let footer = decode_footer(&footer_bytes)?;
        Ok(StoreReader {
            src,
            file_len,
            footer,
            chunks_decoded: 0,
        })
    }

    /// The footer: labels, markers, and the chunk index.
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Total store size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.footer.chunks.len()
    }

    /// Total events across all chunks.
    pub fn total_events(&self) -> u64 {
        self.footer.total_events
    }

    /// Cumulative count of chunks this reader has decoded.
    pub fn chunks_decoded(&self) -> u64 {
        self.chunks_decoded
    }

    fn read_chunk_bytes(&mut self, i: usize) -> io::Result<Vec<u8>> {
        let meta = self
            .footer
            .chunks
            .get(i)
            .copied()
            .ok_or_else(|| bad(format!("chunk {i} out of range")))?;
        let mut bytes = vec![0u8; meta.byte_len as usize];
        self.src.seek(SeekFrom::Start(meta.offset))?;
        self.src.read_exact(&mut bytes)?;
        Ok(bytes)
    }

    /// Reads the raw encoded bytes of a batch of chunks, in the given
    /// order, with one sequential I/O pass — the batch-decode entry point
    /// for the fused analysis engine, which decodes the returned buffers
    /// on its own worker threads via [`crate::format::decode_chunk`].
    ///
    /// Every returned chunk counts toward [`StoreReader::chunks_decoded`]:
    /// callers of this API hand each buffer to the decoder exactly once,
    /// so fetched and decoded are the same tally.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` if an index is out of range.
    pub fn read_chunk_batch(&mut self, indices: &[usize]) -> io::Result<Vec<Vec<u8>>> {
        let mut raw = Vec::with_capacity(indices.len());
        for &i in indices {
            raw.push(self.read_chunk_bytes(i)?);
        }
        self.chunks_decoded += indices.len() as u64;
        Ok(raw)
    }

    /// Reads and decodes chunk `i`.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on corruption (including an event
    /// count that disagrees with the index).
    pub fn decode_chunk_events(&mut self, i: usize) -> io::Result<Vec<MemEvent>> {
        let bytes = self.read_chunk_bytes(i)?;
        let events = decode_chunk(&bytes)?;
        if events.len() as u64 != self.footer.chunks[i].count {
            return Err(bad(format!(
                "chunk {i} decodes {} events, index says {}",
                events.len(),
                self.footer.chunks[i].count
            )));
        }
        self.chunks_decoded += 1;
        Ok(events)
    }

    /// Streams every event, in trace order, through `f` — one chunk
    /// resident at a time, never the full trace.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors.
    pub fn for_each_event(&mut self, mut f: impl FnMut(MemEvent)) -> io::Result<()> {
        for i in 0..self.num_chunks() {
            for e in self.decode_chunk_events(i)? {
                f(e);
            }
        }
        Ok(())
    }

    /// Runs a filtered query: prunes chunks via the footer index, decodes
    /// the survivors (fanned out over `threads` worker threads when
    /// `threads > 1`), and filters events. Output order — and every byte
    /// of it — is identical at every thread count.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors.
    pub fn query(&mut self, pred: &Predicate, threads: usize) -> io::Result<QueryResult> {
        let candidates: Vec<usize> = (0..self.num_chunks())
            .filter(|&i| pred.matches_chunk(&self.footer.chunks[i]))
            .collect();
        let stats = QueryStats {
            chunks_total: self.num_chunks(),
            chunks_pruned: self.num_chunks() - candidates.len(),
            chunks_decoded: candidates.len(),
        };
        // sequential I/O of the surviving byte ranges, parallel CPU decode
        let raw = self.read_chunk_batch(&candidates)?;
        let pred = *pred;
        let decoded = pinpoint_parallel::try_map_ordered(raw, threads, move |bytes| {
            decode_chunk(&bytes).map(|events| {
                events
                    .into_iter()
                    .filter(|e| pred.matches_event(e))
                    .collect::<Vec<_>>()
            })
        })?;
        Ok(QueryResult {
            events: decoded.into_iter().flatten().collect(),
            stats,
        })
    }

    /// Materializes the full in-memory [`Trace`] (events, markers, label
    /// table) — the bridge back to every existing `&Trace` analysis.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors.
    pub fn read_trace(&mut self) -> io::Result<Trace> {
        let mut trace = Trace::new();
        for l in &self.footer.labels {
            trace.intern_label(l);
        }
        let markers = self.footer.markers.clone();
        self.for_each_event(|e| trace.push(e))?;
        for m in markers {
            if m.event_index > trace.len() {
                return Err(bad(format!(
                    "marker `{}` points past the event stream",
                    m.label
                )));
            }
            trace.push_marker(m);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_store_chunked, StoreWriter};
    use pinpoint_trace::{BlockId, EventKind, MemoryKind, TraceSink};
    use std::io::Cursor;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let op = t.intern_label("op.k");
        for i in 0..100u64 {
            t.record(
                i * 10,
                EventKind::Malloc,
                BlockId(i),
                (i as usize + 1) * 16,
                (i as usize) * 64,
                MemoryKind::Activation,
                None,
            );
            t.record(
                i * 10 + 5,
                EventKind::Write,
                BlockId(i),
                (i as usize + 1) * 16,
                (i as usize) * 64,
                MemoryKind::Activation,
                Some(op),
            );
            if i % 10 == 0 {
                t.mark(i * 10, format!("iter:{}", i / 10));
            }
        }
        t
    }

    fn store_bytes(trace: &Trace, chunk_events: usize) -> Vec<u8> {
        let mut out = Vec::new();
        write_store_chunked(trace, &mut out, chunk_events).unwrap();
        out
    }

    #[test]
    fn round_trips_trace_exactly() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.total_events(), t.len() as u64);
        let back = r.read_trace().unwrap();
        assert_eq!(back.events(), t.events());
        assert_eq!(back.markers(), t.markers());
        assert_eq!(back.labels(), t.labels());
    }

    #[test]
    fn time_range_query_prunes_chunks() {
        let t = sample_trace(); // 200 events, times 0..=995
        let bytes = store_bytes(&t, 16);
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        let pred = Predicate::any().with_time_range(0, 50);
        let q = r.query(&pred, 1).unwrap();
        assert!(q.stats.chunks_total > 4);
        assert!(
            q.stats.chunks_decoded <= 2,
            "tiny time window should decode at most a chunk or two, got {:?}",
            q.stats
        );
        let expect: Vec<_> = t
            .events()
            .iter()
            .filter(|e| e.time_ns <= 50)
            .cloned()
            .collect();
        assert_eq!(q.events, expect);
    }

    #[test]
    fn queries_are_thread_count_invariant() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 8);
        let preds = [
            Predicate::any(),
            Predicate::any().with_kind(EventKind::Write),
            Predicate::any().with_block_range(10, 20),
            Predicate::any().with_min_size(800),
            Predicate::any()
                .with_time_range(100, 700)
                .with_category(Category::Intermediates),
        ];
        for pred in preds {
            let mut r1 = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
            let mut rn = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
            let a = r1.query(&pred, 1).unwrap();
            let b = rn.query(&pred, 8).unwrap();
            assert_eq!(a, b, "{pred:?}");
            let expect: Vec<_> = t
                .events()
                .iter()
                .filter(|e| pred.matches_event(e))
                .cloned()
                .collect();
            assert_eq!(a.events, expect, "{pred:?}");
        }
    }

    #[test]
    fn category_and_kind_pushdown_skip_disjoint_chunks() {
        // chunk 1: parameters only; chunk 2: input only
        let mut t = Trace::new();
        for i in 0..8u64 {
            t.record(
                i,
                EventKind::Malloc,
                BlockId(i),
                64,
                0,
                MemoryKind::Weight,
                None,
            );
        }
        for i in 8..16u64 {
            t.record(
                i,
                EventKind::Read,
                BlockId(i - 8),
                64,
                0,
                MemoryKind::Weight,
                None,
            );
        }
        let bytes = store_bytes(&t, 8);
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        let q = r
            .query(&Predicate::any().with_kind(EventKind::Read), 1)
            .unwrap();
        assert_eq!(q.stats.chunks_total, 2);
        assert_eq!(q.stats.chunks_pruned, 1);
        assert_eq!(q.events.len(), 8);
        let q = r
            .query(&Predicate::any().with_category(Category::InputData), 1)
            .unwrap();
        assert_eq!(q.stats.chunks_decoded, 0, "no input-data chunk at all");
        assert!(q.events.is_empty());
    }

    #[test]
    fn predicate_union_is_a_sound_hull() {
        let a = Predicate::any()
            .with_time_range(0, 100)
            .with_kind(EventKind::Malloc)
            .with_min_size(512);
        let b = Predicate::any()
            .with_time_range(400, 900)
            .with_kind(EventKind::Free)
            .with_min_size(64);
        let u = a.union(&b);
        assert_eq!(u.time_range, Some((0, 900)));
        assert_eq!(
            u.kind_mask,
            Some(kind_bit(EventKind::Malloc) | kind_bit(EventKind::Free))
        );
        assert_eq!(u.min_size, Some(64));
        // a field either side leaves open is open in the union
        assert_eq!(u.block_range, None);
        assert_eq!(u.category_mask, None);
        // match-everything absorbs anything
        assert_eq!(a.union(&Predicate::any()), Predicate::any());
        // the hull matches every chunk either operand matches
        let t = sample_trace();
        let bytes = store_bytes(&t, 8);
        let r = StoreReader::new(Cursor::new(bytes)).unwrap();
        for meta in &r.footer().chunks {
            if a.matches_chunk(meta) || b.matches_chunk(meta) {
                assert!(u.matches_chunk(meta), "{meta:?}");
            }
        }
    }

    #[test]
    fn chunk_batch_read_matches_per_chunk_decode_and_counts() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        let mut r = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
        let picks = [0usize, 3, 1];
        let raw = r.read_chunk_batch(&picks).unwrap();
        assert_eq!(r.chunks_decoded(), picks.len() as u64);
        let mut r2 = StoreReader::new(Cursor::new(bytes)).unwrap();
        for (bytes, &i) in raw.iter().zip(&picks) {
            assert_eq!(
                crate::format::decode_chunk(bytes).unwrap(),
                r2.decode_chunk_events(i).unwrap(),
                "chunk {i}"
            );
        }
        assert!(r.read_chunk_batch(&[usize::MAX]).is_err());
    }

    #[test]
    fn rejects_corrupt_stores() {
        let t = sample_trace();
        let bytes = store_bytes(&t, 16);
        // bad magic
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(StoreReader::new(Cursor::new(b)).is_err());
        // bad version
        let mut b = bytes.clone();
        b[4] = 99;
        assert!(StoreReader::new(Cursor::new(b)).is_err());
        // truncated trailer
        let b = bytes[..bytes.len() - 3].to_vec();
        assert!(StoreReader::new(Cursor::new(b)).is_err());
        // not a store at all
        assert!(StoreReader::new(Cursor::new(b"{\"events\":[]}".to_vec())).is_err());
    }

    #[test]
    fn streaming_writer_and_batch_writer_agree() {
        let t = sample_trace();
        let batch = store_bytes(&t, 16);
        let mut w = StoreWriter::with_chunk_events(Vec::new(), 16).unwrap();
        for l in t.labels() {
            w.intern_label(l);
        }
        let mut next_marker = 0usize;
        for (i, e) in t.events().iter().enumerate() {
            while next_marker < t.markers().len() && t.markers()[next_marker].event_index <= i {
                let m = &t.markers()[next_marker];
                w.record_marker(m.time_ns, &m.label);
                next_marker += 1;
            }
            w.record_event(e.clone());
        }
        w.finish().unwrap();
        assert_eq!(w.into_inner(), batch, "same bytes either way");
    }
}
