//! A `Sync` store reader for concurrent consumers: every read path takes
//! `&self`, so one open store (wrapped in an `Arc`) can serve queries from
//! many threads at once — the reader the `pinpoint-serve` daemon hands to
//! its worker pool.
//!
//! [`StoreReader`] is built for one driver: it owns a seekable source and
//! a scratch pool, and its scan path needs `&mut self`. That is the right
//! shape for the CLI (one scan at a time, zero-alloc steady state), but a
//! daemon wants N requests decoding chunks of the same store
//! simultaneously. [`SharedStoreReader`] rebuilds the same validated state
//! around a *positional* source — `pread`-style reads at absolute offsets,
//! no shared cursor — plus an atomic decode counter, and leaves scratch
//! ownership to the caller, which is exactly where a per-request or
//! per-cache-slot scratch wants to live.
//!
//! Determinism contract is unchanged: [`SharedStoreReader::query`] folds
//! per-chunk verdicts in file order, so results — including salvage loss
//! accounting — are bit-identical to [`StoreReader::query`] at any thread
//! count, from any number of concurrent callers.

use crate::columns::{ColumnBatch, DecodeScratch};
use crate::error::StoreError;
use crate::format::{ChunkMeta, Footer};
use crate::reader::{Predicate, QueryResult, QueryStats, ReadPolicy, SalvageSummary, StoreReader};
use std::fs::File;
use std::io::{BufReader, Cursor};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A positional byte source: reads at absolute offsets through `&self`.
#[derive(Debug)]
enum SharedSrc {
    /// An open file, read with `pread` (no shared cursor) on unix.
    #[cfg(unix)]
    File(File),
    /// Seek-and-read fallback where positional reads are unavailable.
    #[cfg(not(unix))]
    File(std::sync::Mutex<File>),
    /// An in-memory store image (tests, synthetic fixtures).
    Bytes(Vec<u8>),
}

impl SharedSrc {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
        match self {
            #[cfg(unix)]
            SharedSrc::File(f) => {
                use std::os::unix::fs::FileExt;
                f.read_exact_at(buf, offset).map_err(StoreError::Io)
            }
            #[cfg(not(unix))]
            SharedSrc::File(f) => {
                use std::io::{Read, Seek, SeekFrom};
                let mut f = f.lock().expect("source lock poisoned");
                f.seek(SeekFrom::Start(offset)).map_err(StoreError::Io)?;
                f.read_exact(buf).map_err(StoreError::Io)
            }
            SharedSrc::Bytes(data) => {
                let start = offset as usize;
                let end = start.checked_add(buf.len()).filter(|&e| e <= data.len());
                match end {
                    Some(end) => {
                        buf.copy_from_slice(&data[start..end]);
                        Ok(())
                    }
                    None => Err(StoreError::Truncated("chunk payload")),
                }
            }
        }
    }
}

/// A thread-safe `.ptrc` reader: validated once at open, then read-only
/// and `Sync` — wrap it in an `Arc` and decode chunks from any number of
/// threads concurrently.
#[derive(Debug)]
pub struct SharedStoreReader {
    src: SharedSrc,
    file_len: u64,
    version: u8,
    policy: ReadPolicy,
    footer: Footer,
    salvage: Option<SalvageSummary>,
    chunks_decoded: AtomicU64,
}

impl SharedStoreReader {
    /// Opens a `.ptrc` file under [`ReadPolicy::Strict`].
    ///
    /// # Errors
    ///
    /// As [`StoreReader::open`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_policy(path, ReadPolicy::Strict)
    }

    /// Opens a `.ptrc` file under the given policy. Validation, footer
    /// loading, and (under [`ReadPolicy::Salvage`]) the index-rebuilding
    /// rescan are exactly [`StoreReader::open_with_policy`]'s — this
    /// constructor reuses that open, then rebuilds around a positional
    /// source.
    ///
    /// # Errors
    ///
    /// As [`StoreReader::open_with_policy`].
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        policy: ReadPolicy,
    ) -> Result<Self, StoreError> {
        let reader = StoreReader::open_with_policy(path, policy)?;
        let (src, parts) = reader.into_parts();
        Ok(Self::from_parts(file_src(src), parts))
    }

    /// Wraps an in-memory store image under [`ReadPolicy::Strict`].
    ///
    /// # Errors
    ///
    /// As [`StoreReader::new`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        Self::from_bytes_with_policy(bytes, ReadPolicy::Strict)
    }

    /// Wraps an in-memory store image under the given policy.
    ///
    /// # Errors
    ///
    /// As [`StoreReader::new_with_policy`].
    pub fn from_bytes_with_policy(bytes: Vec<u8>, policy: ReadPolicy) -> Result<Self, StoreError> {
        let reader = StoreReader::new_with_policy(Cursor::new(bytes), policy)?;
        let (src, parts) = reader.into_parts();
        Ok(Self::from_parts(SharedSrc::Bytes(src.into_inner()), parts))
    }

    fn from_parts(src: SharedSrc, parts: crate::reader::ReaderParts) -> Self {
        SharedStoreReader {
            src,
            file_len: parts.file_len,
            version: parts.version,
            policy: parts.policy,
            footer: parts.footer,
            salvage: parts.salvage,
            chunks_decoded: AtomicU64::new(0),
        }
    }

    /// The active read policy (fixed at open).
    pub fn policy(&self) -> ReadPolicy {
        self.policy
    }

    /// The store's format version byte.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Present when the open had to rebuild the index by rescanning.
    pub fn salvage_summary(&self) -> Option<&SalvageSummary> {
        self.salvage.as_ref()
    }

    /// The footer: labels, markers, and the chunk index.
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Total store size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.footer.chunks.len()
    }

    /// Total events across all chunks.
    pub fn total_events(&self) -> u64 {
        self.footer.total_events
    }

    /// Cumulative count of chunks fetched for decode, across all threads.
    pub fn chunks_decoded(&self) -> u64 {
        self.chunks_decoded.load(Ordering::Relaxed)
    }

    /// Whether per-chunk CRCs exist to verify (v2+ stores).
    fn verify_crc(&self) -> bool {
        self.version >= 2
    }

    /// Reads and decodes chunk `i` into the caller's scratch, verifying
    /// the CRC (v2+) and the event count against the index. Strict about
    /// *this* chunk regardless of policy — skip-and-account iteration
    /// lives in [`SharedStoreReader::query`] and the serve-layer cache.
    ///
    /// Counts toward [`SharedStoreReader::chunks_decoded`].
    ///
    /// # Errors
    ///
    /// I/O errors, [`StoreError::ChunkOutOfRange`], or a typed corruption
    /// error.
    pub fn decode_chunk_into(
        &self,
        i: usize,
        scratch: &mut DecodeScratch,
    ) -> Result<ChunkMeta, StoreError> {
        let meta = self
            .footer
            .chunks
            .get(i)
            .copied()
            .ok_or(StoreError::ChunkOutOfRange {
                chunk: i,
                chunks: self.footer.chunks.len(),
            })?;
        self.chunks_decoded.fetch_add(1, Ordering::Relaxed);
        // byte_len was bounds-checked against the file at open
        let buf = scratch.raw_for(meta.byte_len as usize);
        self.src.read_exact_at(buf, meta.offset)?;
        scratch.decode_verified(&meta, i, self.version, self.verify_crc())?;
        Ok(meta)
    }

    /// Reads, verifies, and decodes chunk `i` into an owned
    /// [`ColumnBatch`] — the cache-fill path, where the decoded columns
    /// outlive any scratch.
    ///
    /// # Errors
    ///
    /// As [`SharedStoreReader::decode_chunk_into`].
    pub fn decode_chunk(&self, i: usize) -> Result<ColumnBatch, StoreError> {
        let mut scratch = DecodeScratch::new();
        self.decode_chunk_into(i, &mut scratch)?;
        Ok(scratch.into_batch())
    }

    /// Prunes the chunk index against `pred`, returning the candidate
    /// chunk ordinals (file order) and a [`QueryStats`] pre-filled with
    /// the pruning tallies.
    pub fn prune(&self, pred: &Predicate) -> (Vec<usize>, QueryStats) {
        let mut candidates = Vec::new();
        let mut stats = QueryStats {
            chunks_total: self.num_chunks(),
            ..QueryStats::default()
        };
        for (i, meta) in self.footer.chunks.iter().enumerate() {
            if pred.matches_chunk(meta) {
                candidates.push(i);
            } else if pred.pruned_by_label(meta) {
                stats.chunks_pruned_by_label += 1;
            }
        }
        stats.chunks_pruned = self.num_chunks() - candidates.len();
        (candidates, stats)
    }

    /// Runs a filtered query through `&self`: prunes chunks via the
    /// footer index, decodes survivors (fanned out over `threads` worker
    /// threads when `threads > 1`), and filters events. Bit-identical to
    /// [`StoreReader::query`] on the same bytes at every thread count —
    /// per-chunk verdicts fold in file order — and safe to call from any
    /// number of threads at once.
    ///
    /// # Errors
    ///
    /// I/O errors; corruption errors under [`ReadPolicy::Strict`].
    pub fn query(&self, pred: &Predicate, threads: usize) -> Result<QueryResult, StoreError> {
        let (candidates, mut stats) = self.prune(pred);
        let pred = *pred;
        let salvage = self.policy == ReadPolicy::Salvage;
        let mapped = pinpoint_parallel::map_ordered(candidates, threads, |i| {
            let mut scratch = DecodeScratch::new();
            let res = self.decode_chunk_into(i, &mut scratch).map(|_| {
                let batch = scratch.batch();
                (0..batch.len())
                    .map(|k| batch.event(k))
                    .filter(|e| pred.matches_event(e))
                    .collect::<Vec<_>>()
            });
            (i, res)
        });
        let mut events = Vec::new();
        for (i, res) in mapped {
            match res {
                Ok(matched) => {
                    stats.chunks_decoded += 1;
                    events.extend(matched);
                }
                Err(e) if salvage && e.is_corruption() => {
                    stats.chunks_skipped += 1;
                    stats.events_lost += self.footer.chunks[i].count;
                    if stats.first_error.is_none() {
                        stats.first_error = Some(e.to_string());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(QueryResult { events, stats })
    }
}

fn file_src(file: BufReader<File>) -> SharedSrc {
    #[cfg(unix)]
    {
        SharedSrc::File(file.into_inner())
    }
    #[cfg(not(unix))]
    {
        SharedSrc::File(std::sync::Mutex::new(file.into_inner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_store_chunked;
    use pinpoint_trace::{BlockId, Category, EventKind, MemoryKind, Trace};
    use std::sync::Arc;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let op = t.intern_label("op.shared");
        for i in 0..200u64 {
            t.record(
                i * 7,
                if i % 3 == 0 {
                    EventKind::Malloc
                } else {
                    EventKind::Write
                },
                BlockId(i % 17),
                (i as usize + 1) * 32,
                (i as usize) * 8,
                if i % 2 == 0 {
                    MemoryKind::Activation
                } else {
                    MemoryKind::Weight
                },
                (i % 5 == 0).then_some(op),
            );
        }
        t
    }

    fn store_bytes(t: &Trace) -> Vec<u8> {
        let mut out = Vec::new();
        write_store_chunked(t, &mut out, 16).unwrap();
        out
    }

    #[test]
    fn matches_mutable_reader_on_every_predicate() {
        let t = sample_trace();
        let bytes = store_bytes(&t);
        let shared = SharedStoreReader::from_bytes(bytes.clone()).unwrap();
        let preds = [
            Predicate::any(),
            Predicate::any().with_kind(EventKind::Malloc),
            Predicate::any().with_time_range(50, 700),
            Predicate::any().with_category(Category::Parameters),
            Predicate::any().with_block_range(3, 9).with_min_size(500),
        ];
        for pred in preds {
            let mut r = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
            let want = r.query(&pred, 1).unwrap();
            for threads in [1, 4] {
                let got = shared.query(&pred, threads).unwrap();
                assert_eq!(got, want, "{pred:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn eight_concurrent_readers_are_bit_identical() {
        let t = sample_trace();
        let bytes = store_bytes(&t);
        let shared = Arc::new(SharedStoreReader::from_bytes(bytes.clone()).unwrap());
        let pred = Predicate::any()
            .with_kind(EventKind::Write)
            .with_time_range(0, 1000);
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        let want = r.query(&pred, 1).unwrap();
        let results: Vec<QueryResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|k| {
                    let shared = Arc::clone(&shared);
                    s.spawn(move || shared.query(&pred, 1 + k % 3).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for got in results {
            assert_eq!(got, want, "concurrent query diverged");
        }
        assert!(shared.chunks_decoded() > 0);
    }

    #[test]
    fn salvage_accounting_matches_mutable_reader() {
        let t = sample_trace();
        let bytes = store_bytes(&t);
        let pristine = SharedStoreReader::from_bytes(bytes.clone()).unwrap();
        let meta = pristine.footer().chunks[2];
        let mut b = bytes;
        b[meta.offset as usize + 1] ^= 0x10;
        let shared =
            SharedStoreReader::from_bytes_with_policy(b.clone(), ReadPolicy::Salvage).unwrap();
        let mut r =
            StoreReader::new_with_policy(Cursor::new(b.clone()), ReadPolicy::Salvage).unwrap();
        let want = r.query(&Predicate::any(), 1).unwrap();
        assert_eq!(want.stats.chunks_skipped, 1);
        assert_eq!(shared.query(&Predicate::any(), 4).unwrap(), want);
        // strict sees the same bytes as an error instead
        let strict = SharedStoreReader::from_bytes(b).unwrap();
        assert!(strict.query(&Predicate::any(), 1).is_err());
    }

    #[test]
    fn owned_decode_matches_event_stream_and_counts() {
        let t = sample_trace();
        let bytes = store_bytes(&t);
        let shared = SharedStoreReader::from_bytes(bytes).unwrap();
        let mut all = Vec::new();
        for i in 0..shared.num_chunks() {
            let batch = shared.decode_chunk(i).unwrap();
            assert!(batch.heap_bytes() > 0);
            for k in 0..batch.len() {
                all.push(batch.event(k));
            }
        }
        assert_eq!(all, t.events());
        assert_eq!(shared.chunks_decoded(), shared.num_chunks() as u64);
        assert!(shared.decode_chunk(usize::MAX).is_err());
    }
}
