//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! Every multi-byte number in a `.ptrc` file is an unsigned LEB128 varint:
//! seven payload bits per byte, high bit set on every byte but the last.
//! Signed deltas (timestamps are non-decreasing but block ids jump both
//! ways between consecutive events) go through the zigzag mapping first so
//! small magnitudes of either sign stay short.

use crate::error::StoreError;

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `buf` starting at `*pos`,
/// advancing `*pos` past it.
///
/// # Errors
///
/// [`StoreError::BadVarint`] on truncated input or a varint encoding more
/// than 64 bits of payload. Never panics, whatever the input bytes.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(StoreError::BadVarint("truncated varint"));
        };
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::BadVarint("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encoded length of `v` as an unsigned LEB128 varint, in bytes (1–10),
/// without materializing the bytes — the v3 encoding chooser costs every
/// candidate column encoding with this before committing to one.
pub fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Maps a signed value onto unsigned zigzag space (0, -1, 1, -2, ... →
/// 0, 1, 2, 3, ...).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a zigzag-mapped signed varint.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Reads a zigzag-mapped signed varint. (The batched column decoder
/// integrates whole zigzag streams instead, so this survives only for
/// tests and API symmetry with [`write_i64`].)
///
/// # Errors
///
/// Propagates [`read_u64`] errors.
#[cfg_attr(not(test), allow(dead_code))]
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64, StoreError> {
    read_u64(buf, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip_at_width_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_is_a_bijection_near_zero() {
        for v in [-3i64, -2, -1, 0, 1, 2, 3, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn i64_round_trip() {
        let mut buf = Vec::new();
        let cases = [0i64, -1, 1, -1_000_000, 1_000_000, i64::MIN, i64::MAX];
        for &v in &cases {
            write_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_and_oversized_varints_error() {
        assert!(read_u64(&[0x80], &mut 0).is_err());
        // 11 continuation bytes: > 64 bits of payload
        let bad = [0xff; 11];
        assert!(read_u64(&bad, &mut 0).is_err());
    }

    #[test]
    fn small_values_stay_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn varint_len_matches_encoded_length() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            (1 << 21) - 1,
            1 << 21,
            u32::MAX as u64,
            u64::MAX >> 1,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(varint_len(v), buf.len(), "v = {v}");
        }
    }
}
