//! Streaming `.ptrc` writer: the [`TraceSink`] the profiler drives.
//!
//! Events are buffered per chunk and spill to the underlying writer every
//! `chunk_events` events, so a full training run never accumulates its
//! trace in RAM — only the footer state (label table, markers, one index
//! entry per flushed chunk) stays resident.
//!
//! Robustness properties:
//!
//! - **Crash-safe file writes** — [`StoreWriter::create`] writes to
//!   `<path>.tmp` and atomically renames onto the destination only after a
//!   successful [`TraceSink::finish`]. A crash, a deferred I/O error, or a
//!   failed footer write never leaves a half-written `.ptrc` at the final
//!   path; the temp file is removed on any finish error.
//! - **Bounded retry with backoff** — transient write errors
//!   (`WouldBlock`, `TimedOut`) are retried up to
//!   [`RetryPolicy::max_attempts`] times with seeded, jittered exponential
//!   backoff. The backoff sleep is injectable, so tests drive the retry
//!   path deterministically with zero wall-clock time.
//! - **Checksummed output** — every chunk is framed with the v2+ record
//!   header (magic, payload length, CRC-32) and the footer gets its own
//!   CRC in the trailer, making later corruption detectable and the file
//!   salvageable without its footer.

use crate::columns::{encode_chunk_v3, MAX_CHUNK_EVENTS};
use crate::crc32::crc32;
use crate::format::{
    chunk_record_header, encode_chunk, encode_footer, trailer_len, ChunkMeta, Footer,
    CHUNK_HEADER_LEN, DEFAULT_CHUNK_EVENTS, MAGIC, VERSION, VERSION_V1, VERSION_V2,
};
use pinpoint_tensor::rng::Rng64;
use pinpoint_trace::{Marker, MemEvent, Trace, TraceSink};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// How transient write errors are retried.
///
/// Retry timing is deterministic for a fixed seed: backoff before the
/// `k`-th retry is drawn from `[base << (k-1) / 2, base << (k-1)]`
/// microseconds using the writer's own [`Rng64`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per write call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_backoff_us: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 100 µs initial backoff: rides out short stalls on
    /// networked or contended filesystems without hiding real failures.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 100,
            seed: 0x7072_6163_6531,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every transient error is surfaced immediately.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_us: 0,
            seed: 0,
        }
    }
}

/// Kinds retried under the policy budget. `Interrupted` is excluded: it is
/// always retried for free, mirroring `Write::write_all`.
fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// `write_all` with the retry policy applied per underlying `write` call.
fn write_all_retrying<W: Write>(
    out: &mut W,
    mut buf: &[u8],
    retry: &RetryPolicy,
    rng: &mut Rng64,
    sleep: &mut dyn FnMut(u64),
) -> io::Result<()> {
    let mut attempts_left = retry.max_attempts.max(1) - 1;
    let mut backoff = retry.base_backoff_us.max(1);
    while !buf.is_empty() {
        match out.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole chunk",
                ));
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_transient(e.kind()) && attempts_left > 0 => {
                attempts_left -= 1;
                let _retry_span =
                    pinpoint_obs::tracer().span_with("store.retry", attempts_left as u64);
                let jitter = backoff / 2 + rng.gen_below(backoff / 2 + 1);
                sleep(jitter);
                backoff = backoff.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A chunked columnar writer producing a `.ptrc` stream.
///
/// Implements [`TraceSink`], so it can be handed to
/// `SimDevice::with_sink` / `profile_into_sink` and driven live during a
/// training run; I/O errors are deferred and surfaced by
/// [`TraceSink::finish`] so the instrumented hot path never branches on
/// I/O.
pub struct StoreWriter<W: Write> {
    out: W,
    version: u8,
    chunk_events: usize,
    pending: Vec<MemEvent>,
    labels: Vec<String>,
    label_index: HashMap<String, u32>,
    markers: Vec<Marker>,
    chunks: Vec<ChunkMeta>,
    bytes_written: u64,
    events_total: u64,
    deferred_err: Option<io::Error>,
    finished: bool,
    retry: RetryPolicy,
    rng: Rng64,
    sleeper: Box<dyn FnMut(u64) + Send>,
    /// `(tmp, dest)`: rename tmp onto dest after a successful finish,
    /// remove tmp on a failed one.
    finalize: Option<(PathBuf, PathBuf)>,
}

impl<W: Write> fmt::Debug for StoreWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreWriter")
            .field("version", &self.version)
            .field("chunk_events", &self.chunk_events)
            .field("events_total", &self.events_total)
            .field("chunks", &self.chunks.len())
            .field("bytes_written", &self.bytes_written)
            .field("deferred_err", &self.deferred_err)
            .field("finished", &self.finished)
            .field("retry", &self.retry)
            .field("finalize", &self.finalize)
            .finish_non_exhaustive()
    }
}

/// Temp-file path used by [`StoreWriter::create`]: `<path>.tmp` in the
/// same directory, so the final rename stays on one filesystem.
pub(crate) fn tmp_path(dest: &Path) -> PathBuf {
    let mut name = dest.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    dest.with_file_name(name)
}

impl StoreWriter<BufWriter<File>> {
    /// Creates a `.ptrc` file at `path` and a writer over it, with
    /// crash-safe semantics: bytes stream into `<path>.tmp`, which is
    /// atomically renamed onto `path` only when [`TraceSink::finish`]
    /// succeeds. On any finish error the temp file is removed and `path`
    /// is left untouched.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and header-write errors (the temp file is
    /// cleaned up if the header write fails).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let dest = path.as_ref().to_path_buf();
        let tmp = tmp_path(&dest);
        let out = BufWriter::new(File::create(&tmp)?);
        match Self::new(out) {
            Ok(mut w) => {
                w.finalize = Some((tmp, dest));
                Ok(w)
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

impl<W: Write> StoreWriter<W> {
    /// Wraps `out`, writing the file header immediately.
    ///
    /// # Errors
    ///
    /// Propagates the header write error.
    pub fn new(out: W) -> io::Result<Self> {
        Self::with_chunk_events(out, DEFAULT_CHUNK_EVENTS)
    }

    /// Like [`StoreWriter::new`] with an explicit chunk granularity
    /// (events per chunk; clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates the header write error.
    pub fn with_chunk_events(out: W, chunk_events: usize) -> io::Result<Self> {
        Self::with_format(out, chunk_events, VERSION)
    }

    /// Like [`StoreWriter::with_chunk_events`] with an explicit format
    /// version — v1 and v2 output exist for compatibility testing and for
    /// exercising the old read paths; new stores should always be v3.
    ///
    /// # Errors
    ///
    /// `InvalidInput` on an unknown version; otherwise propagates the
    /// header write error.
    pub fn with_format(out: W, chunk_events: usize, version: u8) -> io::Result<Self> {
        if version != VERSION && version != VERSION_V2 && version != VERSION_V1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown .ptrc version {version}"),
            ));
        }
        let retry = RetryPolicy::default();
        let mut w = StoreWriter {
            out,
            version,
            chunk_events: chunk_events.clamp(1, MAX_CHUNK_EVENTS),
            pending: Vec::new(),
            labels: Vec::new(),
            label_index: HashMap::new(),
            markers: Vec::new(),
            chunks: Vec::new(),
            bytes_written: 0,
            events_total: 0,
            deferred_err: None,
            finished: false,
            rng: Rng64::seed_from_u64(retry.seed),
            retry,
            sleeper: Box::new(|us| std::thread::sleep(Duration::from_micros(us))),
            finalize: None,
        };
        // the header goes through the same retry-protected path as every
        // other write, so a transient error at byte 0 doesn't kill the
        // writer either
        let mut head = [0u8; MAGIC.len() + 1];
        head[..MAGIC.len()].copy_from_slice(MAGIC);
        head[MAGIC.len()] = version;
        w.write_retrying(&head)?;
        w.bytes_written = head.len() as u64;
        Ok(w)
    }

    /// Sets the transient-error retry policy (reseeding the jitter
    /// stream from the policy's seed).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.rng = Rng64::seed_from_u64(retry.seed);
        self.retry = retry;
    }

    /// Replaces the backoff sleep (argument: microseconds). Tests install
    /// a recording closure here so retry runs take zero wall-clock time.
    pub fn set_sleeper(&mut self, sleeper: Box<dyn FnMut(u64) + Send>) {
        self.sleeper = sleeper;
    }

    /// Arms crash-safe finalization on an already-constructed writer:
    /// after a successful finish, `tmp` is renamed onto `dest`; after a
    /// failed one, `tmp` is removed. For file-backed writers wrapped in
    /// shims (e.g. the fault harness); [`StoreWriter::create`] sets this
    /// up automatically.
    pub fn set_atomic_finalize(&mut self, tmp: PathBuf, dest: PathBuf) {
        self.finalize = Some((tmp, dest));
    }

    /// The format version this writer emits.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Events recorded so far (buffered + flushed).
    pub fn events_written(&self) -> u64 {
        self.events_total
    }

    /// Chunks flushed so far.
    pub fn chunks_flushed(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes emitted so far (excluding the pending chunk and footer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn write_retrying(&mut self, bytes: &[u8]) -> io::Result<()> {
        write_all_retrying(
            &mut self.out,
            bytes,
            &self.retry,
            &mut self.rng,
            &mut self.sleeper,
        )
    }

    fn flush_chunk(&mut self) {
        if self.pending.is_empty() || self.deferred_err.is_some() {
            self.pending.clear();
            return;
        }
        let _flush_span = pinpoint_obs::tracer().span_with("store.flush", self.chunks.len() as u64);
        let (bytes, mut meta) = if self.version >= 3 {
            encode_chunk_v3(&self.pending)
        } else {
            encode_chunk(&self.pending)
        };
        let result = if self.version >= 2 {
            if bytes.len() > u32::MAX as usize {
                Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "chunk payload exceeds u32::MAX bytes",
                ))
            } else {
                meta.offset = self.bytes_written + CHUNK_HEADER_LEN as u64;
                let hdr = chunk_record_header(bytes.len() as u32, meta.crc32);
                self.write_retrying(&hdr)
                    .and_then(|()| self.write_retrying(&bytes))
                    .map(|()| (CHUNK_HEADER_LEN + bytes.len()) as u64)
            }
        } else {
            meta.offset = self.bytes_written;
            meta.crc32 = 0; // v1 carries no checksums
            self.write_retrying(&bytes).map(|()| bytes.len() as u64)
        };
        match result {
            Ok(written) => {
                self.bytes_written += written;
                self.chunks.push(meta);
                self.pending.clear();
            }
            Err(e) => {
                self.deferred_err = Some(e);
            }
        }
    }

    fn finish_inner(&mut self) -> io::Result<()> {
        self.flush_chunk();
        if let Some(e) = self.deferred_err.take() {
            return Err(e);
        }
        let footer = Footer {
            labels: std::mem::take(&mut self.labels),
            markers: std::mem::take(&mut self.markers),
            chunks: std::mem::take(&mut self.chunks),
            total_events: self.events_total,
        };
        let footer_start = self.bytes_written;
        let bytes = encode_footer(&footer, self.version);
        self.write_retrying(&bytes)?;
        self.write_retrying(&footer_start.to_le_bytes())?;
        if self.version >= 2 {
            self.write_retrying(&crc32(&bytes).to_le_bytes())?;
        }
        self.write_retrying(MAGIC)?;
        self.bytes_written += bytes.len() as u64 + trailer_len(self.version) as u64;
        self.out.flush()?;
        Ok(())
    }

    /// Consumes the writer, returning the underlying stream (after
    /// [`TraceSink::finish`]; calling this without a prior successful
    /// finish loses buffered data).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for StoreWriter<W> {
    fn intern_label(&mut self, label: &str) -> u32 {
        if let Some(&i) = self.label_index.get(label) {
            return i;
        }
        let i = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.label_index.insert(label.to_string(), i);
        i
    }

    fn record_event(&mut self, event: MemEvent) {
        debug_assert!(!self.finished, "record_event after finish");
        self.events_total += 1;
        self.pending.push(event);
        if self.pending.len() >= self.chunk_events {
            self.flush_chunk();
        }
    }

    fn record_marker(&mut self, time_ns: u64, label: &str) {
        self.markers.push(Marker {
            time_ns,
            event_index: self.events_total as usize,
            label: label.to_string(),
        });
    }

    fn event_count(&self) -> u64 {
        self.events_total
    }

    fn finish(&mut self) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        let result = self.finish_inner();
        self.finished = true;
        match result {
            Ok(()) => {
                if let Some((tmp, dest)) = self.finalize.take() {
                    if let Err(e) = fs::rename(&tmp, &dest) {
                        let _ = fs::remove_file(&tmp);
                        return Err(e);
                    }
                }
                Ok(())
            }
            Err(e) => {
                // leave nothing half-written behind: the destination is
                // untouched and the temp file is gone
                if let Some((tmp, _)) = self.finalize.take() {
                    let _ = fs::remove_file(&tmp);
                }
                Err(e)
            }
        }
    }
}

fn replay_trace_into<W: Write>(trace: &Trace, w: &mut StoreWriter<W>) -> io::Result<u64> {
    for label in trace.labels() {
        w.intern_label(label);
    }
    // replay events and markers in stream order so marker event indices
    // land where Trace::mark placed them
    let mut next_marker = 0usize;
    let markers = trace.markers();
    for (i, e) in trace.events().iter().enumerate() {
        while next_marker < markers.len() && markers[next_marker].event_index <= i {
            let m = &markers[next_marker];
            w.record_marker(m.time_ns, &m.label);
            next_marker += 1;
        }
        w.record_event(e.clone());
    }
    for m in &markers[next_marker..] {
        w.record_marker(m.time_ns, &m.label);
    }
    w.finish()?;
    Ok(w.bytes_written())
}

/// Writes a whole in-memory [`Trace`] as a `.ptrc` stream, returning the
/// total bytes written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_store<W: Write>(trace: &Trace, out: W) -> io::Result<u64> {
    write_store_chunked(trace, out, DEFAULT_CHUNK_EVENTS)
}

/// [`write_store`] with an explicit chunk granularity.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_store_chunked<W: Write>(
    trace: &Trace,
    out: W,
    chunk_events: usize,
) -> io::Result<u64> {
    let mut w = StoreWriter::with_chunk_events(out, chunk_events)?;
    replay_trace_into(trace, &mut w)
}

/// [`write_store_chunked`] in the legacy v1 format (no checksums).
/// Exists so the v1 read path and v1→v3 conversion stay testable.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_store_chunked_v1<W: Write>(
    trace: &Trace,
    out: W,
    chunk_events: usize,
) -> io::Result<u64> {
    let mut w = StoreWriter::with_format(out, chunk_events, VERSION_V1)?;
    replay_trace_into(trace, &mut w)
}

/// [`write_store_chunked`] in the legacy v2 format (checksummed, but
/// plain column encodings and no fine zone maps). Exists so the v2 read
/// path, v2→v3 conversion, and the v2-vs-v3 benches stay testable.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_store_chunked_v2<W: Write>(
    trace: &Trace,
    out: W,
    chunk_events: usize,
) -> io::Result<u64> {
    let mut w = StoreWriter::with_format(out, chunk_events, VERSION_V2)?;
    replay_trace_into(trace, &mut w)
}

/// Writes a whole in-memory [`Trace`] to a `.ptrc` file, crash-safely
/// (temp file + atomic rename; see [`StoreWriter::create`]).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_store_file(trace: &Trace, path: impl AsRef<Path>) -> io::Result<u64> {
    let mut w = StoreWriter::create(path)?;
    replay_trace_into(trace, &mut w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::{BlockId, EventKind, MemoryKind};

    fn event(i: u64) -> MemEvent {
        MemEvent {
            time_ns: i * 10,
            kind: EventKind::Write,
            block: BlockId(i),
            size: 64,
            offset: 0,
            mem_kind: MemoryKind::Activation,
            op_label: None,
        }
    }

    #[test]
    fn writer_spills_chunks_as_events_stream_in() {
        let mut w = StoreWriter::with_chunk_events(Vec::new(), 4).unwrap();
        let op = w.intern_label("op");
        assert_eq!(op, w.intern_label("op"));
        for i in 0..10u64 {
            let mut e = event(i);
            e.op_label = Some(op);
            w.record_event(e);
        }
        // 10 events at 4/chunk: two full chunks flushed, 2 events pending
        assert_eq!(w.chunks_flushed(), 2);
        assert_eq!(w.events_written(), 10);
        w.finish().unwrap();
        let bytes = w.into_inner();
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(bytes[4], VERSION);
        assert_eq!(&bytes[bytes.len() - 4..], MAGIC);
    }

    #[test]
    fn deferred_io_error_surfaces_at_finish() {
        struct Failing(usize);
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // header writes (magic + version) succeed, chunk write fails;
        // "disk full" is not transient, so no retry kicks in
        let mut w = StoreWriter::with_chunk_events(Failing(2), 1).unwrap();
        w.record_event(event(0));
        assert!(w.finish().is_err());
        // finish is idempotent after reporting
        assert!(w.finish().is_ok());
    }

    #[test]
    fn transient_errors_are_retried_with_seeded_backoff() {
        /// Fails the first `fail` writes with a transient kind.
        struct Flaky {
            fail: usize,
            out: Vec<u8>,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.fail > 0 {
                    self.fail -= 1;
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "slow disk"));
                }
                self.out.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let run = |seed: u64| -> (Vec<u8>, Vec<u64>) {
            let mut w = StoreWriter::with_chunk_events(
                Flaky {
                    fail: 0,
                    out: Vec::new(),
                },
                2,
            )
            .unwrap();
            w.set_retry_policy(RetryPolicy {
                max_attempts: 4,
                base_backoff_us: 100,
                seed,
            });
            let sleeps = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let record = sleeps.clone();
            w.set_sleeper(Box::new(move |us| record.lock().unwrap().push(us)));
            w.out.fail = 2; // next two writes stall, then recover
            for i in 0..2 {
                w.record_event(event(i));
            }
            w.finish().unwrap();
            let slept = sleeps.lock().unwrap().clone();
            (w.into_inner().out, slept)
        };

        let (bytes_a, sleeps_a) = run(7);
        let (bytes_b, sleeps_b) = run(7);
        let (_, sleeps_c) = run(8);
        assert_eq!(sleeps_a.len(), 2, "two transient stalls, two backoffs");
        // jittered exponential: first in [50,100], second in [100,200]
        assert!((50..=100).contains(&sleeps_a[0]), "{sleeps_a:?}");
        assert!((100..=200).contains(&sleeps_a[1]), "{sleeps_a:?}");
        assert_eq!(sleeps_a, sleeps_b, "same seed, same backoff schedule");
        assert_ne!(sleeps_a, sleeps_c, "different seed, different jitter");
        assert_eq!(bytes_a, bytes_b);
        // and the recovered stream is a valid store
        assert_eq!(&bytes_a[..4], MAGIC);
        assert_eq!(&bytes_a[bytes_a.len() - 4..], MAGIC);
    }

    #[test]
    fn retry_budget_is_bounded() {
        /// Always times out.
        struct Stuck;
        impl Write for Stuck {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::TimedOut, "dead disk"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut rng = Rng64::seed_from_u64(1);
        let mut sleeps = 0usize;
        let err = write_all_retrying(
            &mut Stuck,
            b"payload",
            &RetryPolicy {
                max_attempts: 3,
                base_backoff_us: 10,
                seed: 1,
            },
            &mut rng,
            &mut |_| sleeps += 1,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(sleeps, 2, "3 attempts = 2 backoffs");
    }

    #[test]
    fn finish_on_empty_trace_produces_valid_store() {
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.finish().unwrap();
        let bytes = w.into_inner();
        assert!(bytes.len() > crate::format::TRAILER_LEN_V2);
    }

    #[test]
    fn create_renames_only_on_successful_finish() {
        let dir = std::env::temp_dir().join("pinpoint_writer_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("ok.ptrc");
        let _ = fs::remove_file(&dest);
        let tmp = tmp_path(&dest);

        let mut w = StoreWriter::create(&dest).unwrap();
        w.record_event(event(1));
        assert!(tmp.exists(), "bytes stream into the temp file");
        assert!(!dest.exists(), "destination untouched until finish");
        w.finish().unwrap();
        assert!(dest.exists());
        assert!(!tmp.exists(), "temp renamed away");
        let _ = fs::remove_file(&dest);
    }

    #[test]
    fn v1_writer_produces_version_1_header() {
        let mut bytes = Vec::new();
        write_store_chunked_v1(&Trace::new(), &mut bytes, 8).unwrap();
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(bytes[4], VERSION_V1);
    }
}
