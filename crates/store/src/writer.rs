//! Streaming `.ptrc` writer: the [`TraceSink`] the profiler drives.
//!
//! Events are buffered per chunk and spill to the underlying writer every
//! `chunk_events` events, so a full training run never accumulates its
//! trace in RAM — only the footer state (label table, markers, one index
//! entry per flushed chunk) stays resident.

use crate::format::{
    encode_chunk, encode_footer, ChunkMeta, Footer, DEFAULT_CHUNK_EVENTS, MAGIC, TRAILER_LEN,
    VERSION,
};
use pinpoint_trace::{Marker, MemEvent, Trace, TraceSink};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A chunked columnar writer producing a `.ptrc` stream.
///
/// Implements [`TraceSink`], so it can be handed to
/// `SimDevice::with_sink` / `profile_into_sink` and driven live during a
/// training run; I/O errors are deferred and surfaced by
/// [`TraceSink::finish`] so the instrumented hot path never branches on
/// I/O.
#[derive(Debug)]
pub struct StoreWriter<W: Write> {
    out: W,
    chunk_events: usize,
    pending: Vec<MemEvent>,
    labels: Vec<String>,
    label_index: HashMap<String, u32>,
    markers: Vec<Marker>,
    chunks: Vec<ChunkMeta>,
    bytes_written: u64,
    events_total: u64,
    deferred_err: Option<io::Error>,
    finished: bool,
}

impl StoreWriter<BufWriter<File>> {
    /// Creates a `.ptrc` file at `path` and a writer over it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and header-write errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> StoreWriter<W> {
    /// Wraps `out`, writing the file header immediately.
    ///
    /// # Errors
    ///
    /// Propagates the header write error.
    pub fn new(out: W) -> io::Result<Self> {
        Self::with_chunk_events(out, DEFAULT_CHUNK_EVENTS)
    }

    /// Like [`StoreWriter::new`] with an explicit chunk granularity
    /// (events per chunk; clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates the header write error.
    pub fn with_chunk_events(mut out: W, chunk_events: usize) -> io::Result<Self> {
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION])?;
        Ok(StoreWriter {
            out,
            chunk_events: chunk_events.max(1),
            pending: Vec::new(),
            labels: Vec::new(),
            label_index: HashMap::new(),
            markers: Vec::new(),
            chunks: Vec::new(),
            bytes_written: (MAGIC.len() + 1) as u64,
            events_total: 0,
            deferred_err: None,
            finished: false,
        })
    }

    /// Events recorded so far (buffered + flushed).
    pub fn events_written(&self) -> u64 {
        self.events_total
    }

    /// Chunks flushed so far.
    pub fn chunks_flushed(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes emitted so far (excluding the pending chunk and footer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn flush_chunk(&mut self) {
        if self.pending.is_empty() || self.deferred_err.is_some() {
            self.pending.clear();
            return;
        }
        let (bytes, mut meta) = encode_chunk(&self.pending);
        meta.offset = self.bytes_written;
        if let Err(e) = self.out.write_all(&bytes) {
            self.deferred_err = Some(e);
            return;
        }
        self.bytes_written += bytes.len() as u64;
        self.chunks.push(meta);
        self.pending.clear();
    }

    /// Consumes the writer, returning the underlying stream (after
    /// [`TraceSink::finish`]; calling this without a prior successful
    /// finish loses buffered data).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for StoreWriter<W> {
    fn intern_label(&mut self, label: &str) -> u32 {
        if let Some(&i) = self.label_index.get(label) {
            return i;
        }
        let i = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.label_index.insert(label.to_string(), i);
        i
    }

    fn record_event(&mut self, event: MemEvent) {
        debug_assert!(!self.finished, "record_event after finish");
        self.events_total += 1;
        self.pending.push(event);
        if self.pending.len() >= self.chunk_events {
            self.flush_chunk();
        }
    }

    fn record_marker(&mut self, time_ns: u64, label: &str) {
        self.markers.push(Marker {
            time_ns,
            event_index: self.events_total as usize,
            label: label.to_string(),
        });
    }

    fn event_count(&self) -> u64 {
        self.events_total
    }

    fn finish(&mut self) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.flush_chunk();
        if let Some(e) = self.deferred_err.take() {
            self.finished = true;
            return Err(e);
        }
        let footer = Footer {
            labels: std::mem::take(&mut self.labels),
            markers: std::mem::take(&mut self.markers),
            chunks: std::mem::take(&mut self.chunks),
            total_events: self.events_total,
        };
        let footer_start = self.bytes_written;
        let bytes = encode_footer(&footer);
        self.out.write_all(&bytes)?;
        self.out.write_all(&footer_start.to_le_bytes())?;
        self.out.write_all(MAGIC)?;
        self.bytes_written += bytes.len() as u64 + TRAILER_LEN as u64;
        self.out.flush()?;
        self.finished = true;
        Ok(())
    }
}

/// Writes a whole in-memory [`Trace`] as a `.ptrc` stream, returning the
/// total bytes written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_store<W: Write>(trace: &Trace, out: W) -> io::Result<u64> {
    write_store_chunked(trace, out, DEFAULT_CHUNK_EVENTS)
}

/// [`write_store`] with an explicit chunk granularity.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_store_chunked<W: Write>(
    trace: &Trace,
    out: W,
    chunk_events: usize,
) -> io::Result<u64> {
    let mut w = StoreWriter::with_chunk_events(out, chunk_events)?;
    for label in trace.labels() {
        w.intern_label(label);
    }
    // replay events and markers in stream order so marker event indices
    // land where Trace::mark placed them
    let mut next_marker = 0usize;
    let markers = trace.markers();
    for (i, e) in trace.events().iter().enumerate() {
        while next_marker < markers.len() && markers[next_marker].event_index <= i {
            let m = &markers[next_marker];
            w.record_marker(m.time_ns, &m.label);
            next_marker += 1;
        }
        w.record_event(e.clone());
    }
    for m in &markers[next_marker..] {
        w.record_marker(m.time_ns, &m.label);
    }
    w.finish()?;
    Ok(w.bytes_written())
}

/// Writes a whole in-memory [`Trace`] to a `.ptrc` file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_store_file(trace: &Trace, path: impl AsRef<Path>) -> io::Result<u64> {
    write_store(trace, BufWriter::new(File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::{BlockId, EventKind, MemoryKind};

    #[test]
    fn writer_spills_chunks_as_events_stream_in() {
        let mut w = StoreWriter::with_chunk_events(Vec::new(), 4).unwrap();
        let op = w.intern_label("op");
        assert_eq!(op, w.intern_label("op"));
        for i in 0..10u64 {
            w.record_event(MemEvent {
                time_ns: i * 10,
                kind: EventKind::Write,
                block: BlockId(i),
                size: 64,
                offset: 0,
                mem_kind: MemoryKind::Activation,
                op_label: Some(op),
            });
        }
        // 10 events at 4/chunk: two full chunks flushed, 2 events pending
        assert_eq!(w.chunks_flushed(), 2);
        assert_eq!(w.events_written(), 10);
        w.finish().unwrap();
        let bytes = w.into_inner();
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(&bytes[bytes.len() - 4..], MAGIC);
    }

    #[test]
    fn deferred_io_error_surfaces_at_finish() {
        struct Failing(usize);
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // header writes (magic + version) succeed, chunk write fails
        let mut w = StoreWriter::with_chunk_events(Failing(2), 1).unwrap();
        w.record_event(MemEvent {
            time_ns: 0,
            kind: EventKind::Malloc,
            block: BlockId(0),
            size: 1,
            offset: 0,
            mem_kind: MemoryKind::Other,
            op_label: None,
        });
        assert!(w.finish().is_err());
        // finish is idempotent after reporting
        assert!(w.finish().is_ok());
    }

    #[test]
    fn finish_on_empty_trace_produces_valid_store() {
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.finish().unwrap();
        let bytes = w.into_inner();
        assert!(bytes.len() > TRAILER_LEN);
    }
}
