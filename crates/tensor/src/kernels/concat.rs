//! Channel-dimension concatenation and its inverse split (NCHW layout).
//!
//! These back the Inception-family's multi-branch merges: each branch's
//! `[N, Ci, H, W]` output is copied into a channel slice of the
//! `[N, ΣCi, H, W]` result, and the backward pass splits the gradient back
//! per branch.

/// Concatenates `inputs[i]` of shape `[n, parts[i], hw]` along the channel
/// dimension into `out` of shape `[n, sum(parts), hw]`.
///
/// # Panics
///
/// Panics on inconsistent slice lengths or `inputs.len() != parts.len()`.
pub fn concat_channels(inputs: &[&[f32]], out: &mut [f32], n: usize, parts: &[usize], hw: usize) {
    assert_eq!(inputs.len(), parts.len(), "one part size per input");
    let total: usize = parts.iter().sum();
    assert_eq!(out.len(), n * total * hw);
    for (input, &c) in inputs.iter().zip(parts) {
        assert_eq!(input.len(), n * c * hw, "input length mismatch");
    }
    for b in 0..n {
        let mut ch_off = 0usize;
        for (input, &c) in inputs.iter().zip(parts) {
            let src = &input[b * c * hw..(b + 1) * c * hw];
            let dst_start = (b * total + ch_off) * hw;
            out[dst_start..dst_start + c * hw].copy_from_slice(src);
            ch_off += c;
        }
    }
}

/// Splits `input` of shape `[n, sum(parts), hw]` along the channel
/// dimension into `outputs[i]` of shape `[n, parts[i], hw]` — the exact
/// inverse of [`concat_channels`].
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn split_channels(
    input: &[f32],
    outputs: &mut [&mut [f32]],
    n: usize,
    parts: &[usize],
    hw: usize,
) {
    assert_eq!(outputs.len(), parts.len(), "one part size per output");
    let total: usize = parts.iter().sum();
    assert_eq!(input.len(), n * total * hw);
    for (output, &c) in outputs.iter().zip(parts) {
        assert_eq!(output.len(), n * c * hw, "output length mismatch");
    }
    for b in 0..n {
        let mut ch_off = 0usize;
        for (output, &c) in outputs.iter_mut().zip(parts) {
            let src_start = (b * total + ch_off) * hw;
            output[b * c * hw..(b + 1) * c * hw]
                .copy_from_slice(&input[src_start..src_start + c * hw]);
            ch_off += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_orders_channels_per_example() {
        // n=2, parts=[1,2], hw=2
        let a = [1.0, 2.0, 10.0, 20.0]; // [2,1,2]
        let b = [3.0, 4.0, 5.0, 6.0, 30.0, 40.0, 50.0, 60.0]; // [2,2,2]
        let mut out = [0.0; 12];
        concat_channels(&[&a, &b], &mut out, 2, &[1, 2], 2);
        assert_eq!(
            out,
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
        );
    }

    #[test]
    fn split_inverts_concat() {
        let a: Vec<f32> = (0..12).map(|i| i as f32).collect(); // [2,3,2]
        let b: Vec<f32> = (100..108).map(|i| i as f32).collect(); // [2,2,2]
        let mut out = vec![0.0; 20];
        concat_channels(&[&a, &b], &mut out, 2, &[3, 2], 2);
        let mut ra = vec![0.0; 12];
        let mut rb = vec![0.0; 8];
        {
            let mut outs: Vec<&mut [f32]> = vec![&mut ra, &mut rb];
            split_channels(&out, &mut outs, 2, &[3, 2], 2);
        }
        assert_eq!(ra, a);
        assert_eq!(rb, b);
    }

    #[test]
    fn single_input_concat_is_copy() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0; 4];
        concat_channels(&[&a], &mut out, 1, &[2], 2);
        assert_eq!(out, a);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn rejects_bad_lengths() {
        let a = [1.0; 3];
        let mut out = [0.0; 4];
        concat_channels(&[&a], &mut out, 1, &[2], 2);
    }
}
