//! 2-D convolution kernels (NCHW layout) via im2col.
//!
//! These serve the concrete executor for small test shapes; the big-model
//! sweeps run symbolically and only use the FLOP/byte accounting.
//!
//! Every image in the batch is independent, so [`conv2d_forward_mt`] and
//! [`conv2d_backward_mt`] fan the per-image im2col + matmul work out over
//! scoped threads, each worker with its own workspace. Outputs are written
//! to disjoint per-image slices and the weight gradient is reduced in
//! ascending image order after the join, so results are bit-identical to
//! the sequential kernels at every thread count.

use super::matmul::{matmul, Transpose};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One forward fan-out job: an input image and its output slice.
type FwdJob<'a> = (&'a [f32], &'a mut [f32]);
/// One backward fan-out job: an input image, its `dy` slice, and its
/// (disjoint) `dx` slice.
type BwdJob<'a> = (&'a [f32], &'a [f32], &'a mut [f32]);

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeom {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels (number of filters).
    pub f: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both spatial dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeom {
    /// Output height.
    pub fn oh(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn ow(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Validates that the geometry produces at least one output position and
    /// that the kernel fits in the padded input.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (zero stride, kernel larger than the
    /// padded input).
    pub fn validate(&self) {
        assert!(self.stride > 0, "stride must be positive");
        assert!(
            self.h + 2 * self.pad >= self.kh && self.w + 2 * self.pad >= self.kw,
            "kernel {}x{} does not fit padded input {}x{}",
            self.kh,
            self.kw,
            self.h + 2 * self.pad,
            self.w + 2 * self.pad
        );
    }

    /// Number of elements in one im2col column matrix (`C*KH*KW × OH*OW`).
    pub fn col_numel(&self) -> usize {
        self.c * self.kh * self.kw * self.oh() * self.ow()
    }

    /// FLOPs for the whole forward conv (multiply-add = 2).
    pub fn flops(&self) -> u64 {
        2 * self.n as u64
            * self.f as u64
            * self.c as u64
            * self.kh as u64
            * self.kw as u64
            * self.oh() as u64
            * self.ow() as u64
    }
}

/// Expands one image `[C, H, W]` into an im2col matrix
/// `[C*KH*KW, OH*OW]` (row-major), zero-padding out-of-range taps.
pub fn im2col(img: &[f32], g: &Conv2dGeom, col: &mut [f32]) {
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(img.len(), g.c * g.h * g.w);
    assert_eq!(col.len(), g.c * g.kh * g.kw * oh * ow);
    for c in 0..g.c {
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let row = (c * g.kh + ky) * g.kw + kx;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        let v = if iy >= 0 && ix >= 0 && (iy as usize) < g.h && (ix as usize) < g.w
                        {
                            img[(c * g.h + iy as usize) * g.w + ix as usize]
                        } else {
                            0.0
                        };
                        col[row * (oh * ow) + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
}

/// Scatter-adds an im2col matrix back into an image (transpose of
/// [`im2col`]); used by the input-gradient path.
pub fn col2im(col: &[f32], g: &Conv2dGeom, img: &mut [f32]) {
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(img.len(), g.c * g.h * g.w);
    assert_eq!(col.len(), g.c * g.kh * g.kw * oh * ow);
    img.fill(0.0);
    for c in 0..g.c {
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let row = (c * g.kh + ky) * g.kw + kx;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if iy >= 0 && ix >= 0 && (iy as usize) < g.h && (ix as usize) < g.w {
                            img[(c * g.h + iy as usize) * g.w + ix as usize] +=
                                col[row * (oh * ow) + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution: `x [N,C,H,W] * w [F,C,KH,KW] -> out [N,F,OH,OW]`.
///
/// `workspace` must hold one im2col matrix (`g.col_numel()` elements); it is
/// the concrete analogue of cuDNN's workspace allocation and is what the
/// simulator tags as `MemoryKind::Workspace`.
///
/// # Panics
///
/// Panics on inconsistent slice lengths or degenerate geometry.
pub fn conv2d_forward(
    x: &[f32],
    weight: &[f32],
    out: &mut [f32],
    workspace: &mut [f32],
    g: &Conv2dGeom,
) {
    g.validate();
    let (oh, ow) = (g.oh(), g.ow());
    let k = g.c * g.kh * g.kw;
    assert_eq!(x.len(), g.n * g.c * g.h * g.w);
    assert_eq!(weight.len(), g.f * k);
    assert_eq!(out.len(), g.n * g.f * oh * ow);
    assert_eq!(workspace.len(), g.col_numel());
    for n in 0..g.n {
        let img = &x[n * g.c * g.h * g.w..(n + 1) * g.c * g.h * g.w];
        im2col(img, g, workspace);
        let out_n = &mut out[n * g.f * oh * ow..(n + 1) * g.f * oh * ow];
        matmul(
            weight,
            Transpose::No,
            workspace,
            Transpose::No,
            out_n,
            g.f,
            k,
            oh * ow,
        );
    }
}

/// Backward 2-D convolution producing both the input gradient `dx` and the
/// weight gradient `dw` from the output gradient `dy`.
///
/// `workspace` must hold one im2col matrix.
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn conv2d_backward(
    x: &[f32],
    weight: &[f32],
    dy: &[f32],
    dx: &mut [f32],
    dw: &mut [f32],
    workspace: &mut [f32],
    g: &Conv2dGeom,
) {
    g.validate();
    let (oh, ow) = (g.oh(), g.ow());
    let k = g.c * g.kh * g.kw;
    assert_eq!(x.len(), g.n * g.c * g.h * g.w);
    assert_eq!(dx.len(), x.len());
    assert_eq!(weight.len(), g.f * k);
    assert_eq!(dw.len(), weight.len());
    assert_eq!(dy.len(), g.n * g.f * oh * ow);
    assert_eq!(workspace.len(), g.col_numel());
    dw.fill(0.0);
    let mut dw_n = vec![0.0f32; g.f * k];
    let mut dcol = vec![0.0f32; k * oh * ow];
    for n in 0..g.n {
        let img = &x[n * g.c * g.h * g.w..(n + 1) * g.c * g.h * g.w];
        let dy_n = &dy[n * g.f * oh * ow..(n + 1) * g.f * oh * ow];
        // dW += dY_n [F, OHW] @ col_n^T [OHW, K]
        im2col(img, g, workspace);
        matmul(
            dy_n,
            Transpose::No,
            workspace,
            Transpose::Yes,
            &mut dw_n,
            g.f,
            oh * ow,
            k,
        );
        for i in 0..dw.len() {
            dw[i] += dw_n[i];
        }
        // dcol = W^T [K, F] @ dY_n [F, OHW]
        matmul(
            weight,
            Transpose::Yes,
            dy_n,
            Transpose::No,
            &mut dcol,
            k,
            g.f,
            oh * ow,
        );
        let dx_n = &mut dx[n * g.c * g.h * g.w..(n + 1) * g.c * g.h * g.w];
        col2im(&dcol, g, dx_n);
    }
}

/// [`conv2d_forward`] fanned out per image over up to `threads` scoped
/// worker threads, each with its own internally allocated workspace.
/// Bit-identical to the sequential kernel at every thread count.
///
/// # Panics
///
/// Panics on inconsistent slice lengths or degenerate geometry.
pub fn conv2d_forward_mt(
    x: &[f32],
    weight: &[f32],
    out: &mut [f32],
    g: &Conv2dGeom,
    threads: usize,
) {
    g.validate();
    let (oh, ow) = (g.oh(), g.ow());
    let k = g.c * g.kh * g.kw;
    assert_eq!(x.len(), g.n * g.c * g.h * g.w);
    assert_eq!(weight.len(), g.f * k);
    assert_eq!(out.len(), g.n * g.f * oh * ow);
    if threads <= 1 || g.n <= 1 {
        let mut ws = vec![0.0f32; g.col_numel()];
        conv2d_forward(x, weight, out, &mut ws, g);
        return;
    }
    let img_len = g.c * g.h * g.w;
    let out_len = g.f * oh * ow;
    let jobs: Vec<Mutex<Option<FwdJob>>> = x
        .chunks(img_len)
        .zip(out.chunks_mut(out_len))
        .map(|job| Mutex::new(Some(job)))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(g.n) {
            s.spawn(|| {
                let mut ws = vec![0.0f32; g.col_numel()];
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (img, out_n) = jobs[i].lock().unwrap().take().expect("job taken once");
                    im2col(img, g, &mut ws);
                    matmul(
                        weight,
                        Transpose::No,
                        &ws,
                        Transpose::No,
                        out_n,
                        g.f,
                        k,
                        oh * ow,
                    );
                }
            });
        }
    });
}

/// [`conv2d_backward`] fanned out per image over up to `threads` scoped
/// worker threads. `dx` images are disjoint slices; per-image weight
/// gradients are buffered and reduced in ascending image order after the
/// join, so the result is bit-identical to the sequential kernel.
///
/// # Panics
///
/// Panics on inconsistent slice lengths or degenerate geometry.
pub fn conv2d_backward_mt(
    x: &[f32],
    weight: &[f32],
    dy: &[f32],
    dx: &mut [f32],
    dw: &mut [f32],
    g: &Conv2dGeom,
    threads: usize,
) {
    g.validate();
    let (oh, ow) = (g.oh(), g.ow());
    let k = g.c * g.kh * g.kw;
    assert_eq!(x.len(), g.n * g.c * g.h * g.w);
    assert_eq!(dx.len(), x.len());
    assert_eq!(weight.len(), g.f * k);
    assert_eq!(dw.len(), weight.len());
    assert_eq!(dy.len(), g.n * g.f * oh * ow);
    if threads <= 1 || g.n <= 1 {
        let mut ws = vec![0.0f32; g.col_numel()];
        conv2d_backward(x, weight, dy, dx, dw, &mut ws, g);
        return;
    }
    let img_len = g.c * g.h * g.w;
    let dy_len = g.f * oh * ow;
    let jobs: Vec<Mutex<Option<BwdJob>>> = x
        .chunks(img_len)
        .zip(dy.chunks(dy_len))
        .zip(dx.chunks_mut(img_len))
        .map(|((img, dy_n), dx_n)| Mutex::new(Some((img, dy_n, dx_n))))
        .collect();
    let dw_slots: Vec<Mutex<Option<Vec<f32>>>> = (0..g.n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(g.n) {
            s.spawn(|| {
                let mut ws = vec![0.0f32; g.col_numel()];
                let mut dcol = vec![0.0f32; k * oh * ow];
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (img, dy_n, dx_n) = jobs[i].lock().unwrap().take().expect("job taken once");
                    // dW_n = dY_n [F, OHW] @ col_n^T [OHW, K]
                    im2col(img, g, &mut ws);
                    let mut dw_n = vec![0.0f32; g.f * k];
                    matmul(
                        dy_n,
                        Transpose::No,
                        &ws,
                        Transpose::Yes,
                        &mut dw_n,
                        g.f,
                        oh * ow,
                        k,
                    );
                    *dw_slots[i].lock().unwrap() = Some(dw_n);
                    // dcol = W^T [K, F] @ dY_n [F, OHW]
                    matmul(
                        weight,
                        Transpose::Yes,
                        dy_n,
                        Transpose::No,
                        &mut dcol,
                        k,
                        g.f,
                        oh * ow,
                    );
                    col2im(&dcol, g, dx_n);
                }
            });
        }
    });
    // reduce per-image gradients in image order — the sequential kernel's
    // exact accumulation sequence
    dw.fill(0.0);
    for slot in dw_slots {
        let dw_n = slot.into_inner().unwrap().expect("every image produced dW");
        for (acc, v) in dw.iter_mut().zip(&dw_n) {
            *acc += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv(x: &[f32], w: &[f32], g: &Conv2dGeom) -> Vec<f32> {
        let (oh, ow) = (g.oh(), g.ow());
        let mut out = vec![0.0; g.n * g.f * oh * ow];
        for n in 0..g.n {
            for f in 0..g.f {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for c in 0..g.c {
                            for ky in 0..g.kh {
                                for kx in 0..g.kw {
                                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                    if iy >= 0
                                        && ix >= 0
                                        && (iy as usize) < g.h
                                        && (ix as usize) < g.w
                                    {
                                        let xi =
                                            ((n * g.c + c) * g.h + iy as usize) * g.w + ix as usize;
                                        let wi = ((f * g.c + c) * g.kh + ky) * g.kw + kx;
                                        acc += x[xi] * w[wi];
                                    }
                                }
                            }
                        }
                        out[((n * g.f + f) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn fill_pattern(v: &mut [f32]) {
        for (i, x) in v.iter_mut().enumerate() {
            *x = ((i as f32) * 0.37).sin();
        }
    }

    #[test]
    fn forward_matches_naive_convolution() {
        let g = Conv2dGeom {
            n: 2,
            c: 3,
            h: 5,
            w: 5,
            f: 4,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut x = vec![0.0; g.n * g.c * g.h * g.w];
        let mut w = vec![0.0; g.f * g.c * g.kh * g.kw];
        fill_pattern(&mut x);
        fill_pattern(&mut w);
        let mut out = vec![0.0; g.n * g.f * g.oh() * g.ow()];
        let mut ws = vec![0.0; g.col_numel()];
        conv2d_forward(&x, &w, &mut out, &mut ws, &g);
        let naive = naive_conv(&x, &w, &g);
        for (a, b) in out.iter().zip(&naive) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn strided_forward_matches_naive() {
        let g = Conv2dGeom {
            n: 1,
            c: 2,
            h: 7,
            w: 7,
            f: 3,
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(g.oh(), 4);
        let mut x = vec![0.0; g.n * g.c * g.h * g.w];
        let mut w = vec![0.0; g.f * g.c * g.kh * g.kw];
        fill_pattern(&mut x);
        fill_pattern(&mut w);
        let mut out = vec![0.0; g.n * g.f * g.oh() * g.ow()];
        let mut ws = vec![0.0; g.col_numel()];
        conv2d_forward(&x, &w, &mut out, &mut ws, &g);
        let naive = naive_conv(&x, &w, &g);
        for (a, b) in out.iter().zip(&naive) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let g = Conv2dGeom {
            n: 1,
            c: 2,
            h: 4,
            w: 4,
            f: 1,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut x = vec![0.0; g.c * g.h * g.w];
        fill_pattern(&mut x);
        let mut col = vec![0.0; g.col_numel()];
        im2col(&x, &g, &mut col);
        let mut y = vec![0.0; g.col_numel()];
        fill_pattern(&mut y);
        for v in y.iter_mut() {
            *v = (*v * 3.0).cos();
        }
        let lhs: f32 = col.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; g.c * g.h * g.w];
        col2im(&y, &g, &mut back);
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let g = Conv2dGeom {
            n: 1,
            c: 2,
            h: 4,
            w: 4,
            f: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut x = vec![0.0; g.n * g.c * g.h * g.w];
        let mut w = vec![0.0; g.f * g.c * g.kh * g.kw];
        fill_pattern(&mut x);
        fill_pattern(&mut w);
        let out_len = g.n * g.f * g.oh() * g.ow();
        // loss = sum(conv(x, w)) so dy = ones
        let dy = vec![1.0f32; out_len];
        let mut dx = vec![0.0; x.len()];
        let mut dw = vec![0.0; w.len()];
        let mut ws = vec![0.0; g.col_numel()];
        conv2d_backward(&x, &w, &dy, &mut dx, &mut dw, &mut ws, &g);

        let loss = |x: &[f32], w: &[f32]| -> f32 {
            let mut out = vec![0.0; out_len];
            let mut ws = vec![0.0; g.col_numel()];
            conv2d_forward(x, w, &mut out, &mut ws, &g);
            out.iter().sum()
        };
        let eps = 1e-2f32;
        for i in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (numeric - dx[i]).abs() < 2e-2,
                "dx[{i}]: numeric {numeric} vs analytic {}",
                dx[i]
            );
        }
        for i in (0..w.len()).step_by(5) {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let numeric = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (numeric - dw[i]).abs() < 2e-2,
                "dw[{i}]: numeric {numeric} vs analytic {}",
                dw[i]
            );
        }
    }

    #[test]
    fn flops_formula() {
        let g = Conv2dGeom {
            n: 2,
            c: 3,
            h: 8,
            w: 8,
            f: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(g.flops(), 2 * 2 * 16 * 3 * 3 * 3 * 64);
    }

    #[test]
    fn mt_kernels_are_bit_identical_to_sequential() {
        let g = Conv2dGeom {
            n: 5,
            c: 3,
            h: 6,
            w: 6,
            f: 4,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut x = vec![0.0; g.n * g.c * g.h * g.w];
        let mut w = vec![0.0; g.f * g.c * g.kh * g.kw];
        fill_pattern(&mut x);
        fill_pattern(&mut w);
        let out_len = g.n * g.f * g.oh() * g.ow();
        let mut out_seq = vec![0.0; out_len];
        let mut ws = vec![0.0; g.col_numel()];
        conv2d_forward(&x, &w, &mut out_seq, &mut ws, &g);
        let dy: Vec<f32> = out_seq.iter().map(|v| v * 0.5 + 0.1).collect();
        let mut dx_seq = vec![0.0; x.len()];
        let mut dw_seq = vec![0.0; w.len()];
        conv2d_backward(&x, &w, &dy, &mut dx_seq, &mut dw_seq, &mut ws, &g);
        for threads in [1, 2, 3, 8] {
            let mut out_mt = vec![0.0; out_len];
            conv2d_forward_mt(&x, &w, &mut out_mt, &g, threads);
            assert!(
                out_mt
                    .iter()
                    .zip(&out_seq)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "forward mismatch at {threads} threads"
            );
            let mut dx_mt = vec![0.0; x.len()];
            let mut dw_mt = vec![0.0; w.len()];
            conv2d_backward_mt(&x, &w, &dy, &mut dx_mt, &mut dw_mt, &g, threads);
            assert!(
                dx_mt
                    .iter()
                    .zip(&dx_seq)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "dx mismatch at {threads} threads"
            );
            assert!(
                dw_mt
                    .iter()
                    .zip(&dw_seq)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "dw mismatch at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_kernel() {
        Conv2dGeom {
            n: 1,
            c: 1,
            h: 2,
            w: 2,
            f: 1,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 0,
        }
        .validate();
    }
}
