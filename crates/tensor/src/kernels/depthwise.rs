//! Depthwise 2-D convolution kernels (NCHW): each channel is convolved
//! with its own single filter — the building block of the
//! depthwise-separable family (MobileNet).

/// Geometry of a depthwise convolution (one filter per channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DwConv2dGeom {
    /// Batch size.
    pub n: usize,
    /// Channels (= filter count).
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel extent.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl DwConv2dGeom {
    /// Output height.
    pub fn oh(&self) -> usize {
        (self.h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn ow(&self) -> usize {
        (self.w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// FLOPs of the forward pass (multiply-add = 2): one k×k filter per
    /// channel — a factor `f` cheaper than dense convolution.
    pub fn flops(&self) -> u64 {
        2 * (self.n * self.c * self.k * self.k * self.oh() * self.ow()) as u64
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on zero stride or a kernel larger than the padded input.
    pub fn validate(&self) {
        assert!(self.stride > 0, "stride must be positive");
        assert!(
            self.h + 2 * self.pad >= self.k && self.w + 2 * self.pad >= self.k,
            "kernel {k} does not fit padded input {h}x{w}+{p}",
            k = self.k,
            h = self.h,
            w = self.w,
            p = self.pad
        );
    }
}

/// Depthwise forward: `x [N,C,H,W] * w [C,1,K,K] -> out [N,C,OH,OW]`.
///
/// # Panics
///
/// Panics on inconsistent slice lengths or degenerate geometry.
pub fn depthwise_forward(x: &[f32], weight: &[f32], out: &mut [f32], g: &DwConv2dGeom) {
    g.validate();
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(x.len(), g.n * g.c * g.h * g.w);
    assert_eq!(weight.len(), g.c * g.k * g.k);
    assert_eq!(out.len(), g.n * g.c * oh * ow);
    for n in 0..g.n {
        for c in 0..g.c {
            let plane = &x[(n * g.c + c) * g.h * g.w..(n * g.c + c + 1) * g.h * g.w];
            let filt = &weight[c * g.k * g.k..(c + 1) * g.k * g.k];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..g.k {
                        for kx in 0..g.k {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < g.h && (ix as usize) < g.w {
                                acc += plane[iy as usize * g.w + ix as usize] * filt[ky * g.k + kx];
                            }
                        }
                    }
                    out[((n * g.c + c) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
}

/// Depthwise backward: produces `dx` and `dw` from `dy`.
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn depthwise_backward(
    x: &[f32],
    weight: &[f32],
    dy: &[f32],
    dx: &mut [f32],
    dw: &mut [f32],
    g: &DwConv2dGeom,
) {
    g.validate();
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(x.len(), g.n * g.c * g.h * g.w);
    assert_eq!(dx.len(), x.len());
    assert_eq!(weight.len(), g.c * g.k * g.k);
    assert_eq!(dw.len(), weight.len());
    assert_eq!(dy.len(), g.n * g.c * oh * ow);
    dx.fill(0.0);
    dw.fill(0.0);
    for n in 0..g.n {
        for c in 0..g.c {
            let plane = &x[(n * g.c + c) * g.h * g.w..(n * g.c + c + 1) * g.h * g.w];
            let filt = &weight[c * g.k * g.k..(c + 1) * g.k * g.k];
            let dplane = (n * g.c + c) * g.h * g.w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let go = dy[((n * g.c + c) * oh + oy) * ow + ox];
                    if go == 0.0 {
                        continue;
                    }
                    for ky in 0..g.k {
                        for kx in 0..g.k {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < g.h && (ix as usize) < g.w {
                                let pi = iy as usize * g.w + ix as usize;
                                dx[dplane + pi] += go * filt[ky * g.k + kx];
                                dw[c * g.k * g.k + ky * g.k + kx] += go * plane[pi];
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::conv::{conv2d_forward, Conv2dGeom};

    fn fill(v: &mut [f32], seed: f32) {
        for (i, x) in v.iter_mut().enumerate() {
            *x = ((i as f32 + seed) * 0.37).sin();
        }
    }

    #[test]
    fn matches_dense_conv_with_diagonal_filters() {
        // a depthwise conv equals a dense conv whose cross-channel taps are
        // zero: w_dense[f, c] = w_dw[f] if f == c else 0
        let g = DwConv2dGeom {
            n: 2,
            c: 3,
            h: 5,
            w: 5,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut x = vec![0.0; g.n * g.c * g.h * g.w];
        let mut w = vec![0.0; g.c * g.k * g.k];
        fill(&mut x, 1.0);
        fill(&mut w, 2.0);
        let mut out = vec![0.0; g.n * g.c * g.oh() * g.ow()];
        depthwise_forward(&x, &w, &mut out, &g);

        let dense_g = Conv2dGeom {
            n: g.n,
            c: g.c,
            h: g.h,
            w: g.w,
            f: g.c,
            kh: g.k,
            kw: g.k,
            stride: g.stride,
            pad: g.pad,
        };
        let mut w_dense = vec![0.0; g.c * g.c * g.k * g.k];
        for c in 0..g.c {
            for t in 0..g.k * g.k {
                w_dense[(c * g.c + c) * g.k * g.k + t] = w[c * g.k * g.k + t];
            }
        }
        let mut dense_out = vec![0.0; out.len()];
        let mut ws = vec![0.0; dense_g.col_numel()];
        conv2d_forward(&x, &w_dense, &mut dense_out, &mut ws, &dense_g);
        for (a, b) in out.iter().zip(&dense_out) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let g = DwConv2dGeom {
            n: 1,
            c: 2,
            h: 4,
            w: 4,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut x = vec![0.0; g.n * g.c * g.h * g.w];
        let mut w = vec![0.0; g.c * g.k * g.k];
        fill(&mut x, 0.0);
        fill(&mut w, 5.0);
        let out_len = g.n * g.c * g.oh() * g.ow();
        let dy = vec![1.0f32; out_len]; // loss = sum(out)
        let mut dx = vec![0.0; x.len()];
        let mut dw = vec![0.0; w.len()];
        depthwise_backward(&x, &w, &dy, &mut dx, &mut dw, &g);
        let loss = |x: &[f32], w: &[f32]| -> f32 {
            let mut out = vec![0.0; out_len];
            depthwise_forward(x, w, &mut out, &g);
            out.iter().sum()
        };
        let eps = 1e-2f32;
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((numeric - dx[i]).abs() < 2e-2, "dx[{i}]");
        }
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let numeric = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((numeric - dw[i]).abs() < 2e-2, "dw[{i}]");
        }
    }

    #[test]
    fn strided_shapes() {
        let g = DwConv2dGeom {
            n: 1,
            c: 4,
            h: 8,
            w: 8,
            k: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!((g.oh(), g.ow()), (4, 4));
        assert_eq!(g.flops(), 2 * (4 * 9 * 16) as u64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_kernel() {
        DwConv2dGeom {
            n: 1,
            c: 1,
            h: 2,
            w: 2,
            k: 5,
            stride: 1,
            pad: 0,
        }
        .validate();
    }
}
