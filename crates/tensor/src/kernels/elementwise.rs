//! Pointwise kernels: activations, arithmetic, bias broadcast, SGD updates.

/// Rectified linear unit: `out[i] = max(0, x[i])`.
///
/// # Panics
///
/// Panics if `out.len() != x.len()`.
pub fn relu(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o = v.max(0.0);
    }
}

/// Backward of ReLU: `dx[i] = dy[i] * (x[i] > 0)`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn relu_backward(x: &[f32], dy: &[f32], dx: &mut [f32]) {
    assert_eq!(x.len(), dy.len());
    assert_eq!(x.len(), dx.len());
    for i in 0..x.len() {
        dx[i] = if x[i] > 0.0 { dy[i] } else { 0.0 };
    }
}

/// Elementwise addition `out = a + b`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        out[i] = a[i] + b[i];
    }
}

/// Elementwise multiplication `out = a * b`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// Scales by a constant: `out = x * alpha`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn scale(x: &[f32], alpha: f32, out: &mut [f32]) {
    assert_eq!(x.len(), out.len());
    for i in 0..x.len() {
        out[i] = x[i] * alpha;
    }
}

/// Adds a bias vector over the last dimension: for a `rows × cols` input,
/// `out[r, c] = x[r, c] + bias[c]`.
///
/// # Panics
///
/// Panics if `bias.len() != cols` or `x.len() != rows * cols`.
pub fn add_bias(x: &[f32], bias: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols);
    assert_eq!(out.len(), rows * cols);
    assert_eq!(bias.len(), cols);
    for r in 0..rows {
        for c in 0..cols {
            out[r * cols + c] = x[r * cols + c] + bias[c];
        }
    }
}

/// Gradient of [`add_bias`] with respect to the bias: column sums of `dy`.
///
/// # Panics
///
/// Panics if `db.len() != cols` or `dy.len() != rows * cols`.
pub fn bias_grad(dy: &[f32], db: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(dy.len(), rows * cols);
    assert_eq!(db.len(), cols);
    db.fill(0.0);
    for r in 0..rows {
        for c in 0..cols {
            db[c] += dy[r * cols + c];
        }
    }
}

/// Vanilla SGD update: `w -= lr * g`, in place.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sgd_step(w: &mut [f32], g: &[f32], lr: f32) {
    assert_eq!(w.len(), g.len());
    for i in 0..w.len() {
        w[i] -= lr * g[i];
    }
}

/// SGD with momentum: `v = mu * v + g; w -= lr * v`, both in place.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sgd_momentum_step(w: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, mu: f32) {
    assert_eq!(w.len(), g.len());
    assert_eq!(w.len(), v.len());
    for i in 0..w.len() {
        v[i] = mu * v[i] + g[i];
        w[i] -= lr * v[i];
    }
}

/// Inverted-dropout forward using a precomputed 0/1 mask scaled by
/// `1 / keep_prob`: `out = x * mask`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dropout_apply(x: &[f32], mask: &[f32], out: &mut [f32]) {
    mul(x, mask, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = [-1.0, 0.0, 2.5];
        let mut out = [0.0; 3];
        relu(&x, &mut out);
        assert_eq!(out, [0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu_backward_masks_by_input_sign() {
        let x = [-1.0, 0.0, 2.5];
        let dy = [10.0, 10.0, 10.0];
        let mut dx = [0.0; 3];
        relu_backward(&x, &dy, &mut dx);
        // gradient at exactly zero is zero (subgradient convention)
        assert_eq!(dx, [0.0, 0.0, 10.0]);
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let x = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = [10.0, 20.0];
        let mut out = [0.0; 4];
        add_bias(&x, &b, &mut out, 2, 2);
        assert_eq!(out, [11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn bias_grad_is_column_sum() {
        let dy = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let mut db = [0.0; 2];
        bias_grad(&dy, &mut db, 2, 2);
        assert_eq!(db, [4.0, 6.0]);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut w = [1.0, 1.0];
        sgd_step(&mut w, &[0.5, -0.5], 0.1);
        assert_eq!(w, [0.95, 1.05]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut w = [0.0];
        let mut v = [0.0];
        sgd_momentum_step(&mut w, &mut v, &[1.0], 0.1, 0.9);
        assert!((v[0] - 1.0).abs() < 1e-6);
        assert!((w[0] + 0.1).abs() < 1e-6);
        sgd_momentum_step(&mut w, &mut v, &[1.0], 0.1, 0.9);
        assert!((v[0] - 1.9).abs() < 1e-6);
        assert!((w[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn arithmetic_kernels() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let mut out = [0.0; 2];
        add(&a, &b, &mut out);
        assert_eq!(out, [4.0, 6.0]);
        mul(&a, &b, &mut out);
        assert_eq!(out, [3.0, 8.0]);
        scale(&a, 2.0, &mut out);
        assert_eq!(out, [2.0, 4.0]);
    }

    #[test]
    fn dropout_applies_scaled_mask() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let mask = [0.0, 2.0, 0.0, 2.0]; // keep_prob = 0.5
        let mut out = [0.0; 4];
        dropout_apply(&x, &mask, &mut out);
        assert_eq!(out, [0.0, 4.0, 0.0, 8.0]);
    }
}
