//! Dense matrix multiplication kernels.
//!
//! These are the concrete-execution counterparts of the simulator's `MatMul`
//! graph op. [`matmul`] is cache-blocked: transposed operands are packed
//! into row-major buffers once (pure copies), and the ikj loop nest is
//! tiled so the hot `b` rows and `out` rows stay in cache. The blocking is
//! **bit-identical** to the reference kernel — for every output element the
//! partial products are accumulated in ascending `p` order with the same
//! skip of zero `a` values — so swapping kernels never changes results.
//! [`matmul_reference`] keeps the original untiled loop as the oracle.

/// Whether a matmul operand is used as stored or transposed on the fly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the mathematical transpose of the operand.
    Yes,
}

impl Transpose {
    /// Returns true for [`Transpose::Yes`].
    pub fn is_transposed(self) -> bool {
        matches!(self, Transpose::Yes)
    }
}

/// Row-block size: `out` rows touched per tile.
const BLOCK_M: usize = 32;
/// Reduction-block size: `a` columns / `b` rows per tile.
const BLOCK_K: usize = 128;
/// Column-block size: contiguous `b`/`out` span per tile (in elements).
const BLOCK_N: usize = 512;

/// Computes `out = A' * B'` where `A'` is `a` (shape `m × k` after optional
/// transposition) and `B'` is `b` (shape `k × n` after optional
/// transposition).
///
/// `a` is stored row-major with logical shape `m × k` if `ta == No`, or
/// `k × m` if `ta == Yes`; correspondingly for `b`.
///
/// Bit-identical to [`matmul_reference`] at every shape and transpose
/// combination.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn matmul(
    a: &[f32],
    ta: Transpose,
    b: &[f32],
    tb: Transpose,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length must be m*k");
    assert_eq!(b.len(), k * n, "rhs length must be k*n");
    assert_eq!(out.len(), m * n, "out length must be m*n");
    out.fill(0.0);
    // Pack transposed operands into row-major layout once, so the tiled
    // loops below always stream contiguous rows. Copying reorders memory,
    // not arithmetic: values are untouched.
    let a_packed: Vec<f32>;
    let a = match ta {
        Transpose::No => a,
        Transpose::Yes => {
            let mut buf = vec![0.0f32; m * k];
            transpose2d(a, &mut buf, k, m);
            a_packed = buf;
            &a_packed
        }
    };
    let b_packed: Vec<f32>;
    let b = match tb {
        Transpose::No => b,
        Transpose::Yes => {
            let mut buf = vec![0.0f32; k * n];
            transpose2d(b, &mut buf, n, k);
            b_packed = buf;
            &b_packed
        }
    };
    // Tiled ikj. Per output element the accumulation order is ascending p
    // (p-blocks ascend, p ascends within a block) with zero `a` values
    // skipped — exactly the reference kernel's order.
    for i0 in (0..m).step_by(BLOCK_M) {
        let i1 = (i0 + BLOCK_M).min(m);
        for p0 in (0..k).step_by(BLOCK_K) {
            let p1 = (p0 + BLOCK_K).min(k);
            for j0 in (0..n).step_by(BLOCK_N) {
                let j1 = (j0 + BLOCK_N).min(n);
                for i in i0..i1 {
                    let a_row = &a[i * k + p0..i * k + p1];
                    let out_row = &mut out[i * n + j0..i * n + j1];
                    for (dp, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[(p0 + dp) * n + j0..(p0 + dp) * n + j1];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// The original untiled ikj kernel, kept as the determinism oracle for
/// [`matmul`]. Same contract, same panics.
#[allow(clippy::too_many_arguments)]
pub fn matmul_reference(
    a: &[f32],
    ta: Transpose,
    b: &[f32],
    tb: Transpose,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length must be m*k");
    assert_eq!(b.len(), k * n, "rhs length must be k*n");
    assert_eq!(out.len(), m * n, "out length must be m*n");
    out.fill(0.0);
    // Index helpers honoring the transpose flags.
    let a_at = |i: usize, p: usize| -> f32 {
        match ta {
            Transpose::No => a[i * k + p],
            Transpose::Yes => a[p * m + i],
        }
    };
    let b_at = |p: usize, j: usize| -> f32 {
        match tb {
            Transpose::No => b[p * n + j],
            Transpose::Yes => b[j * k + p],
        }
    };
    for i in 0..m {
        for p in 0..k {
            let av = a_at(i, p);
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += av * b_at(p, j);
            }
        }
    }
}

/// Transposes a row-major `rows × cols` matrix into `out` (`cols × rows`).
///
/// # Panics
///
/// Panics if slice lengths do not equal `rows * cols`.
pub fn transpose2d(input: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(input.len(), rows * cols);
    assert_eq!(out.len(), rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = input[r * cols + c];
        }
    }
}

/// FLOP count of an `m × k` by `k × n` matmul (multiply-add counted as 2).
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut out = vec![0.0; 4];
        matmul(&a, Transpose::No, &eye, Transpose::No, &mut out, 2, 2, 2);
        assert_eq!(out, a);
    }

    #[test]
    fn known_product() {
        // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![7., 8., 9., 10., 11., 12.];
        let mut out = vec![0.0; 4];
        matmul(&a, Transpose::No, &b, Transpose::No, &mut out, 2, 3, 2);
        assert_eq!(out, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_lhs_matches_manual_transpose() {
        // a stored as k x m = 3 x 2; logical A = a^T is 2 x 3.
        let a_stored = vec![1., 4., 2., 5., 3., 6.]; // (a^T) of [1 2 3;4 5 6]
        let b = vec![7., 8., 9., 10., 11., 12.];
        let mut out = vec![0.0; 4];
        matmul(
            &a_stored,
            Transpose::Yes,
            &b,
            Transpose::No,
            &mut out,
            2,
            3,
            2,
        );
        assert_eq!(out, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_rhs_matches_manual_transpose() {
        let a = vec![1., 2., 3., 4., 5., 6.]; // 2x3
                                              // b stored as n x k = 2 x 3; logical B = b^T is 3 x 2.
        let b_stored = vec![7., 9., 11., 8., 10., 12.];
        let mut out = vec![0.0; 4];
        matmul(
            &a,
            Transpose::No,
            &b_stored,
            Transpose::Yes,
            &mut out,
            2,
            3,
            2,
        );
        assert_eq!(out, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn both_transposed() {
        // C = A^T B^T with A stored 3x2, B stored 2x3.
        let a_stored = vec![1., 4., 2., 5., 3., 6.]; // A^T, logical A = 2x3
        let b_stored = vec![7., 9., 11., 8., 10., 12.]; // B^T, logical B = 3x2
        let mut out = vec![0.0; 4];
        matmul(
            &a_stored,
            Transpose::Yes,
            &b_stored,
            Transpose::Yes,
            &mut out,
            2,
            3,
            2,
        );
        assert_eq!(out, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transpose2d_round_trip() {
        let m = vec![1., 2., 3., 4., 5., 6.]; // 2x3
        let mut t = vec![0.0; 6];
        transpose2d(&m, &mut t, 2, 3);
        assert_eq!(t, vec![1., 4., 2., 5., 3., 6.]);
        let mut back = vec![0.0; 6];
        transpose2d(&t, &mut back, 3, 2);
        assert_eq!(back, m);
    }

    #[test]
    fn flops_counts_multiply_adds() {
        assert_eq!(matmul_flops(4096, 2, 12288), 2 * 4096 * 2 * 12288);
    }

    #[test]
    fn degenerate_dims() {
        let a: Vec<f32> = vec![];
        let b: Vec<f32> = vec![];
        let mut out: Vec<f32> = vec![];
        matmul(&a, Transpose::No, &b, Transpose::No, &mut out, 0, 0, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_reference() {
        use crate::rng::Rng64;
        let mut rng = Rng64::seed_from_u64(0x3A7);
        // shapes straddling the block sizes, including non-multiples
        let shapes = [
            (1, 1, 1),
            (3, 5, 7),
            (32, 128, 512),
            (33, 129, 513),
            (70, 40, 90),
            (5, 300, 17),
        ];
        for &(m, k, n) in &shapes {
            let mut a = vec![0.0f32; m * k];
            let mut b = vec![0.0f32; k * n];
            for v in a.iter_mut() {
                // ~1 in 8 exact zeros exercises the skip path
                *v = if rng.gen_below(8) == 0 {
                    0.0
                } else {
                    rng.gen_range_f32(-2.0, 2.0)
                };
            }
            for v in b.iter_mut() {
                *v = rng.gen_range_f32(-2.0, 2.0);
            }
            for ta in [Transpose::No, Transpose::Yes] {
                for tb in [Transpose::No, Transpose::Yes] {
                    let mut fast = vec![0.0f32; m * n];
                    let mut slow = vec![0.0f32; m * n];
                    matmul(&a, ta, &b, tb, &mut fast, m, k, n);
                    matmul_reference(&a, ta, &b, tb, &mut slow, m, k, n);
                    let same = fast
                        .iter()
                        .zip(&slow)
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(same, "bit mismatch at {m}x{k}x{n} ta={ta:?} tb={tb:?}");
                }
            }
        }
    }
}
