//! Dense matrix multiplication kernels.
//!
//! These are the concrete-execution counterparts of the simulator's `MatMul`
//! graph op. They are deliberately simple (ikj loop order, no blocking): the
//! simulator's performance numbers come from the analytic cost model, not
//! from host wall-clock time, so clarity wins over micro-optimization.

/// Whether a matmul operand is used as stored or transposed on the fly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the mathematical transpose of the operand.
    Yes,
}

impl Transpose {
    /// Returns true for [`Transpose::Yes`].
    pub fn is_transposed(self) -> bool {
        matches!(self, Transpose::Yes)
    }
}

/// Computes `out = A' * B'` where `A'` is `a` (shape `m × k` after optional
/// transposition) and `B'` is `b` (shape `k × n` after optional
/// transposition).
///
/// `a` is stored row-major with logical shape `m × k` if `ta == No`, or
/// `k × m` if `ta == Yes`; correspondingly for `b`.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn matmul(
    a: &[f32],
    ta: Transpose,
    b: &[f32],
    tb: Transpose,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length must be m*k");
    assert_eq!(b.len(), k * n, "rhs length must be k*n");
    assert_eq!(out.len(), m * n, "out length must be m*n");
    out.fill(0.0);
    // Index helpers honoring the transpose flags.
    let a_at = |i: usize, p: usize| -> f32 {
        match ta {
            Transpose::No => a[i * k + p],
            Transpose::Yes => a[p * m + i],
        }
    };
    let b_at = |p: usize, j: usize| -> f32 {
        match tb {
            Transpose::No => b[p * n + j],
            Transpose::Yes => b[j * k + p],
        }
    };
    for i in 0..m {
        for p in 0..k {
            let av = a_at(i, p);
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += av * b_at(p, j);
            }
        }
    }
}

/// Transposes a row-major `rows × cols` matrix into `out` (`cols × rows`).
///
/// # Panics
///
/// Panics if slice lengths do not equal `rows * cols`.
pub fn transpose2d(input: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(input.len(), rows * cols);
    assert_eq!(out.len(), rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = input[r * cols + c];
        }
    }
}

/// FLOP count of an `m × k` by `k × n` matmul (multiply-add counted as 2).
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut out = vec![0.0; 4];
        matmul(&a, Transpose::No, &eye, Transpose::No, &mut out, 2, 2, 2);
        assert_eq!(out, a);
    }

    #[test]
    fn known_product() {
        // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![7., 8., 9., 10., 11., 12.];
        let mut out = vec![0.0; 4];
        matmul(&a, Transpose::No, &b, Transpose::No, &mut out, 2, 3, 2);
        assert_eq!(out, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_lhs_matches_manual_transpose() {
        // a stored as k x m = 3 x 2; logical A = a^T is 2 x 3.
        let a_stored = vec![1., 4., 2., 5., 3., 6.]; // (a^T) of [1 2 3;4 5 6]
        let b = vec![7., 8., 9., 10., 11., 12.];
        let mut out = vec![0.0; 4];
        matmul(&a_stored, Transpose::Yes, &b, Transpose::No, &mut out, 2, 3, 2);
        assert_eq!(out, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_rhs_matches_manual_transpose() {
        let a = vec![1., 2., 3., 4., 5., 6.]; // 2x3
        // b stored as n x k = 2 x 3; logical B = b^T is 3 x 2.
        let b_stored = vec![7., 9., 11., 8., 10., 12.];
        let mut out = vec![0.0; 4];
        matmul(&a, Transpose::No, &b_stored, Transpose::Yes, &mut out, 2, 3, 2);
        assert_eq!(out, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn both_transposed() {
        // C = A^T B^T with A stored 3x2, B stored 2x3.
        let a_stored = vec![1., 4., 2., 5., 3., 6.]; // A^T, logical A = 2x3
        let b_stored = vec![7., 9., 11., 8., 10., 12.]; // B^T, logical B = 3x2
        let mut out = vec![0.0; 4];
        matmul(
            &a_stored,
            Transpose::Yes,
            &b_stored,
            Transpose::Yes,
            &mut out,
            2,
            3,
            2,
        );
        assert_eq!(out, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transpose2d_round_trip() {
        let m = vec![1., 2., 3., 4., 5., 6.]; // 2x3
        let mut t = vec![0.0; 6];
        transpose2d(&m, &mut t, 2, 3);
        assert_eq!(t, vec![1., 4., 2., 5., 3., 6.]);
        let mut back = vec![0.0; 6];
        transpose2d(&t, &mut back, 3, 2);
        assert_eq!(back, m);
    }

    #[test]
    fn flops_counts_multiply_adds() {
        assert_eq!(matmul_flops(4096, 2, 12288), 2 * 4096 * 2 * 12288);
    }

    #[test]
    fn degenerate_dims() {
        let a: Vec<f32> = vec![];
        let b: Vec<f32> = vec![];
        let mut out: Vec<f32> = vec![];
        matmul(&a, Transpose::No, &b, Transpose::No, &mut out, 0, 0, 0);
        assert!(out.is_empty());
    }
}
