//! Concrete CPU kernels backing the simulator's graph ops.
//!
//! Each submodule mirrors a family of graph ops in `pinpoint-nn`:
//!
//! * [`matmul`] — dense GEMM with transpose flags
//! * [`elementwise`] — activations, bias broadcast, SGD updates
//! * [`reduce`] — sums, argmax, accuracy
//! * [`softmax`] — fused softmax-cross-entropy
//! * [`conv`] — im2col 2-D convolution
//! * [`pool`] — max/avg/global-avg pooling
//! * [`norm`] — batch normalization
//! * [`concat`] — channel concatenation / split (Inception merges)
//! * [`depthwise`] — depthwise convolution (MobileNet)
//! * [`optim`] — Adam and decoupled weight decay

pub mod concat;
pub mod conv;
pub mod depthwise;
pub mod elementwise;
pub mod matmul;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod reduce;
pub mod softmax;
