//! Batch normalization kernels (NCHW, per-channel statistics).

/// Batch-norm forward (training mode): normalizes over the `N × H × W`
/// positions of each channel, then applies per-channel scale (`gamma`) and
/// shift (`beta`).
///
/// Saves the per-channel batch mean and inverse standard deviation into
/// `save_mean` / `save_inv_std` for the backward pass, and folds the batch
/// statistics into `running_mean` / `running_var` with `momentum`.
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
#[allow(clippy::too_many_arguments)]
pub fn batchnorm_forward(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    save_mean: &mut [f32],
    save_inv_std: &mut [f32],
    running_mean: &mut [f32],
    running_var: &mut [f32],
    n: usize,
    c: usize,
    hw: usize,
    momentum: f32,
    eps: f32,
) {
    assert_eq!(x.len(), n * c * hw);
    assert_eq!(out.len(), x.len());
    for s in [&gamma, &beta] {
        assert_eq!(s.len(), c);
    }
    assert_eq!(save_mean.len(), c);
    assert_eq!(save_inv_std.len(), c);
    assert_eq!(running_mean.len(), c);
    assert_eq!(running_var.len(), c);
    let m = (n * hw) as f32;
    for ch in 0..c {
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for b in 0..n {
            let base = (b * c + ch) * hw;
            for i in 0..hw {
                let v = x[base + i] as f64;
                sum += v;
                sum_sq += v * v;
            }
        }
        let mean = (sum / m as f64) as f32;
        let var = ((sum_sq / m as f64) - (sum / m as f64).powi(2)).max(0.0) as f32;
        let inv_std = 1.0 / (var + eps).sqrt();
        save_mean[ch] = mean;
        save_inv_std[ch] = inv_std;
        running_mean[ch] = (1.0 - momentum) * running_mean[ch] + momentum * mean;
        running_var[ch] = (1.0 - momentum) * running_var[ch] + momentum * var;
        for b in 0..n {
            let base = (b * c + ch) * hw;
            for i in 0..hw {
                out[base + i] = gamma[ch] * (x[base + i] - mean) * inv_std + beta[ch];
            }
        }
    }
}

/// Batch-norm backward: produces `dx`, `dgamma`, `dbeta` from `dy` and the
/// saved forward statistics.
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
#[allow(clippy::too_many_arguments)]
pub fn batchnorm_backward(
    x: &[f32],
    gamma: &[f32],
    dy: &[f32],
    save_mean: &[f32],
    save_inv_std: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
    n: usize,
    c: usize,
    hw: usize,
) {
    assert_eq!(x.len(), n * c * hw);
    assert_eq!(dy.len(), x.len());
    assert_eq!(dx.len(), x.len());
    assert_eq!(dgamma.len(), c);
    assert_eq!(dbeta.len(), c);
    let m = (n * hw) as f32;
    for ch in 0..c {
        let mean = save_mean[ch];
        let inv_std = save_inv_std[ch];
        let mut sum_dy = 0.0f32;
        let mut sum_dy_xhat = 0.0f32;
        for b in 0..n {
            let base = (b * c + ch) * hw;
            for i in 0..hw {
                let xhat = (x[base + i] - mean) * inv_std;
                sum_dy += dy[base + i];
                sum_dy_xhat += dy[base + i] * xhat;
            }
        }
        dbeta[ch] = sum_dy;
        dgamma[ch] = sum_dy_xhat;
        for b in 0..n {
            let base = (b * c + ch) * hw;
            for i in 0..hw {
                let xhat = (x[base + i] - mean) * inv_std;
                dx[base + i] =
                    gamma[ch] * inv_std / m * (m * dy[base + i] - sum_dy - xhat * sum_dy_xhat);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(v: &mut [f32], seed: f32) {
        for (i, x) in v.iter_mut().enumerate() {
            *x = ((i as f32 + seed) * 0.71).sin() * 2.0;
        }
    }

    #[test]
    fn forward_normalizes_each_channel() {
        let (n, c, hw) = (4usize, 3usize, 8usize);
        let mut x = vec![0.0; n * c * hw];
        fill(&mut x, 1.0);
        let gamma = vec![1.0; c];
        let beta = vec![0.0; c];
        let mut out = vec![0.0; x.len()];
        let mut sm = vec![0.0; c];
        let mut sv = vec![0.0; c];
        let mut rm = vec![0.0; c];
        let mut rv = vec![1.0; c];
        batchnorm_forward(
            &x, &gamma, &beta, &mut out, &mut sm, &mut sv, &mut rm, &mut rv, n, c, hw, 0.1, 1e-5,
        );
        for ch in 0..c {
            let mut vals = Vec::new();
            for b in 0..n {
                let base = (b * c + ch) * hw;
                vals.extend_from_slice(&out[base..base + hw]);
            }
            let m: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / vals.len() as f32;
            assert!(m.abs() < 1e-4, "channel {ch} mean {m}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn gamma_beta_rescale_output() {
        let (n, c, hw) = (2usize, 1usize, 4usize);
        let mut x = vec![0.0; n * c * hw];
        fill(&mut x, 3.0);
        let gamma = vec![2.0];
        let beta = vec![5.0];
        let mut out = vec![0.0; x.len()];
        let (mut sm, mut sv, mut rm, mut rv) = (vec![0.0], vec![0.0], vec![0.0], vec![1.0]);
        batchnorm_forward(
            &x, &gamma, &beta, &mut out, &mut sm, &mut sv, &mut rm, &mut rv, n, c, hw, 0.1, 1e-5,
        );
        let m: f32 = out.iter().sum::<f32>() / out.len() as f32;
        assert!((m - 5.0).abs() < 1e-4);
    }

    #[test]
    fn running_stats_updated_with_momentum() {
        let (n, c, hw) = (2usize, 1usize, 4usize);
        let x = vec![2.0; n * c * hw];
        let gamma = vec![1.0];
        let beta = vec![0.0];
        let mut out = vec![0.0; x.len()];
        let (mut sm, mut sv) = (vec![0.0], vec![0.0]);
        let mut rm = vec![0.0];
        let mut rv = vec![1.0];
        batchnorm_forward(
            &x, &gamma, &beta, &mut out, &mut sm, &mut sv, &mut rm, &mut rv, n, c, hw, 0.5, 1e-5,
        );
        assert!((rm[0] - 1.0).abs() < 1e-6); // 0.5*0 + 0.5*2
        assert!((rv[0] - 0.5).abs() < 1e-6); // 0.5*1 + 0.5*0
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let (n, c, hw) = (2usize, 2usize, 3usize);
        let mut x = vec![0.0; n * c * hw];
        fill(&mut x, 0.0);
        let gamma = vec![1.3, 0.7];
        let beta = vec![0.1, -0.2];
        let eps = 1e-5f32;

        let forward_loss = |x: &[f32], gamma: &[f32], beta: &[f32]| -> f32 {
            let mut out = vec![0.0; x.len()];
            let (mut sm, mut sv) = (vec![0.0; c], vec![0.0; c]);
            let (mut rm, mut rv) = (vec![0.0; c], vec![1.0; c]);
            batchnorm_forward(
                x, gamma, beta, &mut out, &mut sm, &mut sv, &mut rm, &mut rv, n, c, hw, 0.1, eps,
            );
            // loss = weighted sum so dy varies per element
            out.iter()
                .enumerate()
                .map(|(i, v)| v * ((i % 5) as f32 - 2.0))
                .sum()
        };

        let mut out = vec![0.0; x.len()];
        let (mut sm, mut sv) = (vec![0.0; c], vec![0.0; c]);
        let (mut rm, mut rv) = (vec![0.0; c], vec![1.0; c]);
        batchnorm_forward(
            &x, &gamma, &beta, &mut out, &mut sm, &mut sv, &mut rm, &mut rv, n, c, hw, 0.1, eps,
        );
        let dy: Vec<f32> = (0..x.len()).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut dx = vec![0.0; x.len()];
        let (mut dgamma, mut dbeta) = (vec![0.0; c], vec![0.0; c]);
        batchnorm_backward(
            &x,
            &gamma,
            &dy,
            &sm,
            &sv,
            &mut dx,
            &mut dgamma,
            &mut dbeta,
            n,
            c,
            hw,
        );

        let h = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let numeric =
                (forward_loss(&xp, &gamma, &beta) - forward_loss(&xm, &gamma, &beta)) / (2.0 * h);
            assert!(
                (numeric - dx[i]).abs() < 5e-2,
                "dx[{i}] numeric {numeric} vs analytic {}",
                dx[i]
            );
        }
        for ch in 0..c {
            let mut gp = gamma.clone();
            gp[ch] += h;
            let mut gm = gamma.clone();
            gm[ch] -= h;
            let numeric = (forward_loss(&x, &gp, &beta) - forward_loss(&x, &gm, &beta)) / (2.0 * h);
            assert!(
                (numeric - dgamma[ch]).abs() < 5e-2,
                "dgamma[{ch}] numeric {numeric} vs analytic {}",
                dgamma[ch]
            );
            let mut bp = beta.clone();
            bp[ch] += h;
            let mut bm = beta.clone();
            bm[ch] -= h;
            let numeric =
                (forward_loss(&x, &gamma, &bp) - forward_loss(&x, &gamma, &bm)) / (2.0 * h);
            assert!(
                (numeric - dbeta[ch]).abs() < 5e-2,
                "dbeta[{ch}] numeric {numeric} vs analytic {}",
                dbeta[ch]
            );
        }
    }
}
