//! Optimizer update kernels beyond plain SGD.

/// Adam update (Kingma & Ba), in place:
///
/// ```text
/// m = β1 m + (1-β1) g
/// v = β2 v + (1-β2) g²
/// m̂ = m / (1-β1ᵗ),  v̂ = v / (1-β2ᵗ)
/// w -= lr · m̂ / (√v̂ + ε)
/// ```
///
/// `t` is the 1-based step count.
///
/// # Panics
///
/// Panics if the slices differ in length or `t == 0`.
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    w: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
) {
    assert_eq!(w.len(), g.len());
    assert_eq!(w.len(), m.len());
    assert_eq!(w.len(), v.len());
    assert!(t >= 1, "Adam step count is 1-based");
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    for i in 0..w.len() {
        m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
        v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
        let m_hat = m[i] / bc1;
        let v_hat = v[i] / bc2;
        w[i] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

/// Decoupled weight decay (AdamW-style): `w -= lr * wd * w`, in place.
///
/// # Panics
///
/// Never panics.
pub fn weight_decay(w: &mut [f32], lr: f32, wd: f32) {
    let factor = 1.0 - lr * wd;
    for v in w.iter_mut() {
        *v *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_first_step_moves_by_lr() {
        // with bias correction, step 1 moves each weight by ≈ lr·sign(g)
        let mut w = [0.0f32, 0.0];
        let mut m = [0.0f32; 2];
        let mut v = [0.0f32; 2];
        adam_step(
            &mut w,
            &mut m,
            &mut v,
            &[1.0, -2.0],
            0.1,
            0.9,
            0.999,
            1e-8,
            1,
        );
        assert!((w[0] + 0.1).abs() < 1e-4, "{w:?}");
        assert!((w[1] - 0.1).abs() < 1e-4, "{w:?}");
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // minimize f(w) = (w-3)^2; g = 2(w-3)
        let mut w = [0.0f32];
        let mut m = [0.0f32];
        let mut v = [0.0f32];
        for t in 1..=500u64 {
            let g = [2.0 * (w[0] - 3.0)];
            adam_step(&mut w, &mut m, &mut v, &g, 0.05, 0.9, 0.999, 1e-8, t);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }

    #[test]
    fn adam_adapts_per_coordinate_scale() {
        // one coordinate's gradient is 100× the other; Adam's normalized
        // steps should be comparable in magnitude
        let mut w = [0.0f32, 0.0];
        let mut m = [0.0f32; 2];
        let mut v = [0.0f32; 2];
        for t in 1..=10u64 {
            adam_step(
                &mut w,
                &mut m,
                &mut v,
                &[100.0, 1.0],
                0.01,
                0.9,
                0.999,
                1e-8,
                t,
            );
        }
        let ratio = w[0] / w[1];
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn adam_rejects_step_zero() {
        let mut w = [0.0f32];
        let mut m = [0.0f32];
        let mut v = [0.0f32];
        adam_step(&mut w, &mut m, &mut v, &[1.0], 0.1, 0.9, 0.999, 1e-8, 0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut w = [2.0f32, -2.0];
        weight_decay(&mut w, 0.1, 0.5);
        assert_eq!(w, [1.9, -1.9]);
    }
}
