//! Spatial pooling kernels (NCHW layout).

/// Geometry of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool2dGeom {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Window height.
    pub kh: usize,
    /// Window width.
    pub kw: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl Pool2dGeom {
    /// Output height.
    pub fn oh(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn ow(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }
}

/// Max-pool forward. Also records, per output element, the flat input index
/// of the chosen maximum into `argmax` for use by the backward pass.
/// Padded positions are treated as `-inf` and never win.
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn maxpool_forward(x: &[f32], out: &mut [f32], argmax: &mut [u32], g: &Pool2dGeom) {
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(x.len(), g.n * g.c * g.h * g.w);
    assert_eq!(out.len(), g.n * g.c * oh * ow);
    assert_eq!(argmax.len(), out.len());
    for n in 0..g.n {
        for c in 0..g.c {
            let plane = &x[(n * g.c + c) * g.h * g.w..(n * g.c + c + 1) * g.h * g.w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0u32;
                    for ky in 0..g.kh {
                        for kx in 0..g.kw {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < g.h && (ix as usize) < g.w {
                                let idx = iy as usize * g.w + ix as usize;
                                if plane[idx] > best {
                                    best = plane[idx];
                                    best_idx = idx as u32;
                                }
                            }
                        }
                    }
                    let o = ((n * g.c + c) * oh + oy) * ow + ox;
                    out[o] = best;
                    argmax[o] = best_idx;
                }
            }
        }
    }
}

/// Max-pool backward: routes each output gradient to the input element that
/// won the forward max.
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn maxpool_backward(dy: &[f32], argmax: &[u32], dx: &mut [f32], g: &Pool2dGeom) {
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(dy.len(), g.n * g.c * oh * ow);
    assert_eq!(argmax.len(), dy.len());
    assert_eq!(dx.len(), g.n * g.c * g.h * g.w);
    dx.fill(0.0);
    for n in 0..g.n {
        for c in 0..g.c {
            let base = (n * g.c + c) * g.h * g.w;
            for o in 0..oh * ow {
                let oi = (n * g.c + c) * oh * ow + o;
                dx[base + argmax[oi] as usize] += dy[oi];
            }
        }
    }
}

/// Average-pool forward (count includes padding, matching
/// `count_include_pad=true` semantics for simplicity and symmetry with the
/// backward pass).
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn avgpool_forward(x: &[f32], out: &mut [f32], g: &Pool2dGeom) {
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(x.len(), g.n * g.c * g.h * g.w);
    assert_eq!(out.len(), g.n * g.c * oh * ow);
    let denom = (g.kh * g.kw) as f32;
    for n in 0..g.n {
        for c in 0..g.c {
            let plane = &x[(n * g.c + c) * g.h * g.w..(n * g.c + c + 1) * g.h * g.w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..g.kh {
                        for kx in 0..g.kw {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < g.h && (ix as usize) < g.w {
                                acc += plane[iy as usize * g.w + ix as usize];
                            }
                        }
                    }
                    out[((n * g.c + c) * oh + oy) * ow + ox] = acc / denom;
                }
            }
        }
    }
}

/// Average-pool backward: spreads each output gradient uniformly over its
/// window.
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn avgpool_backward(dy: &[f32], dx: &mut [f32], g: &Pool2dGeom) {
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(dy.len(), g.n * g.c * oh * ow);
    assert_eq!(dx.len(), g.n * g.c * g.h * g.w);
    dx.fill(0.0);
    let denom = (g.kh * g.kw) as f32;
    for n in 0..g.n {
        for c in 0..g.c {
            let base = (n * g.c + c) * g.h * g.w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let grad = dy[((n * g.c + c) * oh + oy) * ow + ox] / denom;
                    for ky in 0..g.kh {
                        for kx in 0..g.kw {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < g.h && (ix as usize) < g.w {
                                dx[base + iy as usize * g.w + ix as usize] += grad;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Global average pool: `[N, C, H, W] -> [N, C]`.
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn global_avgpool_forward(x: &[f32], out: &mut [f32], n: usize, c: usize, hw: usize) {
    assert_eq!(x.len(), n * c * hw);
    assert_eq!(out.len(), n * c);
    for i in 0..n * c {
        let s: f32 = x[i * hw..(i + 1) * hw].iter().sum();
        out[i] = s / hw as f32;
    }
}

/// Backward of [`global_avgpool_forward`].
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
pub fn global_avgpool_backward(dy: &[f32], dx: &mut [f32], n: usize, c: usize, hw: usize) {
    assert_eq!(dy.len(), n * c);
    assert_eq!(dx.len(), n * c * hw);
    for i in 0..n * c {
        let g = dy[i] / hw as f32;
        for v in dx[i * hw..(i + 1) * hw].iter_mut() {
            *v = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_2x2() -> Pool2dGeom {
        Pool2dGeom {
            n: 1,
            c: 1,
            h: 4,
            w: 4,
            kh: 2,
            kw: 2,
            stride: 2,
            pad: 0,
        }
    }

    #[test]
    fn maxpool_picks_window_maxima() {
        let g = geom_2x2();
        #[rustfmt::skip]
        let x = [
            1., 2., 5., 6.,
            3., 4., 7., 8.,
            9., 10., 13., 14.,
            11., 12., 15., 16.,
        ];
        let mut out = [0.0; 4];
        let mut arg = [0u32; 4];
        maxpool_forward(&x, &mut out, &mut arg, &g);
        assert_eq!(out, [4., 8., 12., 16.]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let g = geom_2x2();
        #[rustfmt::skip]
        let x = [
            1., 2., 5., 6.,
            3., 4., 7., 8.,
            9., 10., 13., 14.,
            11., 12., 15., 16.,
        ];
        let mut out = [0.0; 4];
        let mut arg = [0u32; 4];
        maxpool_forward(&x, &mut out, &mut arg, &g);
        let dy = [1.0, 2.0, 3.0, 4.0];
        let mut dx = [0.0; 16];
        maxpool_backward(&dy, &arg, &mut dx, &g);
        assert_eq!(dx[5], 1.0); // position of 4
        assert_eq!(dx[7], 2.0); // position of 8
        assert_eq!(dx[13], 3.0); // position of 12
        assert_eq!(dx[15], 4.0); // position of 16
        assert_eq!(dx.iter().filter(|v| **v != 0.0).count(), 4);
    }

    #[test]
    fn avgpool_averages_windows() {
        let g = geom_2x2();
        let x = [2.0; 16];
        let mut out = [0.0; 4];
        avgpool_forward(&x, &mut out, &g);
        assert_eq!(out, [2.0; 4]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let g = geom_2x2();
        let dy = [4.0; 4];
        let mut dx = [0.0; 16];
        avgpool_backward(&dy, &mut dx, &g);
        assert_eq!(dx, [1.0; 16]);
    }

    #[test]
    fn avgpool_adjoint_property() {
        // <avgpool(x), y> == <x, avgpool_backward(y)>
        let g = Pool2dGeom {
            n: 1,
            c: 2,
            h: 5,
            w: 5,
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 1,
        };
        let mut x = vec![0.0; g.n * g.c * g.h * g.w];
        for (i, v) in x.iter_mut().enumerate() {
            *v = (i as f32 * 0.3).sin();
        }
        let olen = g.n * g.c * g.oh() * g.ow();
        let mut out = vec![0.0; olen];
        avgpool_forward(&x, &mut out, &g);
        let mut y = vec![0.0; olen];
        for (i, v) in y.iter_mut().enumerate() {
            *v = (i as f32 * 0.7).cos();
        }
        let lhs: f32 = out.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; x.len()];
        avgpool_backward(&y, &mut back, &g);
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn global_avgpool_round_trip() {
        let x = [1.0, 3.0, 5.0, 7.0, 2.0, 4.0, 6.0, 8.0]; // n=1, c=2, hw=4
        let mut out = [0.0; 2];
        global_avgpool_forward(&x, &mut out, 1, 2, 4);
        assert_eq!(out, [4.0, 5.0]);
        let mut dx = [0.0; 8];
        global_avgpool_backward(&[4.0, 8.0], &mut dx, 1, 2, 4);
        assert_eq!(dx, [1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
