//! Reduction kernels: sums, means, argmax, accuracy.

/// Sum of all elements.
pub fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Arithmetic mean of all elements (0.0 for an empty slice).
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f32
    }
}

/// Row-wise argmax of a `rows × cols` matrix.
///
/// Ties resolve to the lowest index, matching common framework semantics.
///
/// # Panics
///
/// Panics if `x.len() != rows * cols` or `cols == 0` with nonzero rows.
pub fn argmax_rows(x: &[f32], rows: usize, cols: usize) -> Vec<usize> {
    assert_eq!(x.len(), rows * cols);
    if rows > 0 {
        assert!(cols > 0, "argmax over empty rows is undefined");
    }
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        let mut best = 0usize;
        for (c, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = c;
            }
        }
        out.push(best);
    }
    out
}

/// Classification accuracy of row-wise predictions against integer labels.
///
/// # Panics
///
/// Panics if `labels.len() != rows` or `x.len() != rows * cols`.
pub fn accuracy(x: &[f32], labels: &[u32], rows: usize, cols: usize) -> f32 {
    assert_eq!(labels.len(), rows);
    let preds = argmax_rows(x, rows, cols);
    if rows == 0 {
        return 0.0;
    }
    let correct = preds
        .iter()
        .zip(labels)
        .filter(|(p, l)| **p == **l as usize)
        .count();
    correct as f32 / rows as f32
}

/// Sum over axis 0 of a `rows × cols` matrix (i.e., column sums).
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent.
pub fn sum_axis0(x: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols);
    assert_eq!(out.len(), cols);
    out.fill(0.0);
    for r in 0..rows {
        for c in 0..cols {
            out[c] += x[r * cols + c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(sum(&x), 10.0);
        assert_eq!(mean(&x), 2.5);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn argmax_picks_first_on_ties() {
        let x = [1.0, 3.0, 3.0, 0.5, 0.2, 0.1];
        assert_eq!(argmax_rows(&x, 2, 3), vec![1, 0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = [0.9, 0.1, 0.2, 0.8]; // preds: 0, 1
        assert_eq!(accuracy(&logits, &[0, 0], 2, 2), 0.5);
        assert_eq!(accuracy(&logits, &[0, 1], 2, 2), 1.0);
    }

    #[test]
    fn column_sums() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0; 2];
        sum_axis0(&x, &mut out, 2, 2);
        assert_eq!(out, [4.0, 6.0]);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        assert_eq!(accuracy(&[], &[], 0, 3), 0.0);
    }
}
