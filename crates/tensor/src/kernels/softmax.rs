//! Softmax and fused softmax-cross-entropy kernels.

/// Numerically-stable row-wise softmax of a `rows × cols` matrix.
///
/// # Panics
///
/// Panics if slice lengths do not equal `rows * cols`.
pub fn softmax_rows(x: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols);
    assert_eq!(out.len(), rows * cols);
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out[r * cols + c] = e;
            denom += e;
        }
        for c in 0..cols {
            out[r * cols + c] /= denom;
        }
    }
}

/// Fused softmax + cross-entropy forward.
///
/// Writes row-wise softmax probabilities into `probs` (kept for the backward
/// pass) and returns the mean negative log-likelihood over the batch.
///
/// # Panics
///
/// Panics if `labels.len() != rows`, any label is out of range, or slice
/// lengths are inconsistent.
pub fn softmax_cross_entropy(
    logits: &[f32],
    labels: &[u32],
    probs: &mut [f32],
    rows: usize,
    cols: usize,
) -> f32 {
    assert_eq!(labels.len(), rows);
    softmax_rows(logits, probs, rows, cols);
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        let label = label as usize;
        assert!(
            label < cols,
            "label {label} out of range for {cols} classes"
        );
        let p = probs[r * cols + label].max(1e-12);
        loss -= p.ln();
    }
    if rows == 0 {
        0.0
    } else {
        loss / rows as f32
    }
}

/// Backward of the fused softmax-cross-entropy (mean reduction):
/// `dlogits = (probs - onehot(labels)) / rows`.
///
/// # Panics
///
/// Panics if slice lengths or labels are inconsistent.
pub fn softmax_cross_entropy_backward(
    probs: &[f32],
    labels: &[u32],
    dlogits: &mut [f32],
    rows: usize,
    cols: usize,
) {
    assert_eq!(probs.len(), rows * cols);
    assert_eq!(dlogits.len(), rows * cols);
    assert_eq!(labels.len(), rows);
    let inv = if rows == 0 { 0.0 } else { 1.0 / rows as f32 };
    dlogits.copy_from_slice(probs);
    for (r, &label) in labels.iter().enumerate() {
        dlogits[r * cols + label as usize] -= 1.0;
    }
    for v in dlogits.iter_mut() {
        *v *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = [1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut p = [0.0; 6];
        softmax_rows(&x, &mut p, 2, 3);
        for r in 0..2 {
            let s: f32 = p[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // monotone in logits
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = [1000.0, 1001.0, 1002.0];
        let mut p = [0.0; 3];
        softmax_rows(&x, &mut p, 1, 3);
        let y = [0.0, 1.0, 2.0];
        let mut q = [0.0; 3];
        softmax_rows(&y, &mut q, 1, 3);
        for i in 0..3 {
            assert!((p[i] - q[i]).abs() < 1e-6);
            assert!(p[i].is_finite());
        }
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_c() {
        let logits = [0.0; 4]; // 1 row, 4 classes
        let mut probs = [0.0; 4];
        let loss = softmax_cross_entropy(&logits, &[2], &mut probs, 1, 4);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = [100.0, 0.0];
        let mut probs = [0.0; 2];
        let loss = softmax_cross_entropy(&logits, &[0], &mut probs, 1, 2);
        assert!(loss < 1e-4);
    }

    #[test]
    fn backward_matches_probs_minus_onehot() {
        let logits = [1.0, 2.0, 0.5, 0.1, 0.2, 0.3];
        let labels = [1u32, 2u32];
        let mut probs = [0.0; 6];
        softmax_cross_entropy(&logits, &labels, &mut probs, 2, 3);
        let mut d = [0.0; 6];
        softmax_cross_entropy_backward(&probs, &labels, &mut d, 2, 3);
        // gradient rows sum to zero
        for r in 0..2 {
            let s: f32 = d[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sum {s}");
        }
        // label entry is negative, others positive
        assert!(d[1] < 0.0 && d[0] > 0.0 && d[2] > 0.0);
        assert!(d[5] < 0.0 && d[3] > 0.0 && d[4] > 0.0);
    }

    #[test]
    fn backward_is_numerical_gradient_of_loss() {
        // finite-difference check on a small problem
        let logits = vec![0.3, -0.2, 0.8, 0.1, 0.0, -0.5];
        let labels = [2u32, 0u32];
        let (rows, cols) = (2usize, 3usize);
        let mut probs = vec![0.0; 6];
        softmax_cross_entropy(&logits, &labels, &mut probs, rows, cols);
        let mut analytic = vec![0.0; 6];
        softmax_cross_entropy_backward(&probs, &labels, &mut analytic, rows, cols);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp[i] += eps;
            let mut lm = logits.clone();
            lm[i] -= eps;
            let mut scratch = vec![0.0; 6];
            let fp = softmax_cross_entropy(&lp, &labels, &mut scratch, rows, cols);
            let fm = softmax_cross_entropy(&lm, &labels, &mut scratch, rows, cols);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 1e-3,
                "grad mismatch at {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_label() {
        let logits = [0.0, 0.0];
        let mut probs = [0.0; 2];
        softmax_cross_entropy(&logits, &[5], &mut probs, 1, 2);
    }
}
