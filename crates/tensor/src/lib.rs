//! # pinpoint-tensor
//!
//! Shape/stride machinery and CPU `f32` kernels for the `pinpoint` DNN
//! training simulator — the reproduction of *"Pinpointing the Memory
//! Behaviors of DNN Training"* (ISPASS 2021).
//!
//! This crate plays two roles:
//!
//! 1. **Shape inference.** [`Shape`] is the currency of the symbolic
//!    executor: every simulated device-memory block is sized from a `Shape`.
//! 2. **Concrete math.** The [`kernels`] module implements real `f32`
//!    computation (GEMM, conv2d, pooling, batch-norm, softmax-cross-entropy,
//!    SGD) used by the concrete executor for the paper's MLP case study and
//!    for correctness tests.
//!
//! # Examples
//!
//! ```
//! use pinpoint_tensor::{kernels::matmul::{matmul, Transpose}, Shape};
//!
//! let w0 = Shape::new(vec![2, 12288]); // the paper's Fig. 1 weight
//! assert_eq!(w0.size_bytes(), 2 * 12288 * 4);
//!
//! let a = [1.0_f32, 0.0, 0.0, 1.0];
//! let b = [3.0_f32, 4.0, 5.0, 6.0];
//! let mut out = [0.0_f32; 4];
//! matmul(&a, Transpose::No, &b, Transpose::No, &mut out, 2, 2, 2);
//! assert_eq!(out, b);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kernels;
pub mod rng;
mod shape;

pub use shape::Shape;
