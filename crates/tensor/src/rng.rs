//! A small, deterministic, std-only PRNG.
//!
//! The workspace runs in hermetic environments with no crates.io access, so
//! everything that previously leaned on the `rand` crate (weight init, the
//! two-blobs dataset, randomized property tests) draws from this generator
//! instead. It is xoshiro256++ seeded through SplitMix64 — the same
//! construction the reference implementation recommends — giving a long
//! period and good equidistribution at a few nanoseconds per draw.
//!
//! Determinism contract: for a fixed seed, the stream of values is identical
//! across platforms, thread counts, and releases. Profiling results derived
//! from it (e.g. concrete-mode weight init) are part of the reproducibility
//! guarantee that the parallel sweep engine asserts in tests.

/// SplitMix64 step, used for seeding and as a cheap stateless hash.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so
    /// nearby seeds produce unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform `f32` in `[lo, hi]` (closed; matches the old
    /// `rand::gen_range(-bound..=bound)` init-spec semantics closely enough
    /// for weight init).
    #[inline]
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + (hi - lo) * self.gen_f32()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            // rejected: tiny bias region, retry
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.gen_below((hi - lo) as u64) as usize
    }

    /// Fair coin flip.
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Standard-normal draw (Box–Muller; one of the pair is discarded to
    /// keep the stream position independent of call parity).
    #[inline]
    pub fn gen_normal(&mut self) -> f64 {
        let u1 = self.gen_f64().max(f64::EPSILON);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        let mut c = Rng64::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = Rng64::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng64::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let u = r.gen_range_usize(5, 12);
            assert!((5..12).contains(&u));
            let f = r.gen_range_f32(-0.5, 0.5);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn gen_below_covers_all_residues() {
        let mut r = Rng64::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.gen_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::seed_from_u64(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gen_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn splitmix_is_a_pure_function_of_state() {
        let mut s1 = 123u64;
        let mut s2 = 123u64;
        assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
        assert_eq!(s1, s2);
    }
}
