//! Tensor shapes, strides, and broadcasting rules.
//!
//! A [`Shape`] is an ordered list of dimension extents. It is the unit of
//! shape inference throughout the simulator: every graph tensor carries a
//! `Shape`, and the symbolic executor sizes device-memory blocks from it.

use std::fmt;

/// The shape of a dense tensor: an ordered list of dimension extents.
///
/// An empty dimension list denotes a scalar (`numel == 1`).
///
/// # Examples
///
/// ```
/// use pinpoint_tensor::Shape;
///
/// let s = Shape::new(vec![4096, 12288]);
/// assert_eq!(s.numel(), 4096 * 12288);
/// assert_eq!(s.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a list of dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Returns the dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Size in bytes when stored densely as `f32`.
    pub fn size_bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }

    /// Row-major (C-order) strides, in *elements*.
    ///
    /// The last dimension has stride 1. A scalar yields an empty stride list.
    ///
    /// ```
    /// use pinpoint_tensor::Shape;
    /// assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.dims.len()];
        let mut acc = 1usize;
        for (i, &d) in self.dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of range.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.rank()
        );
        let mut off = 0usize;
        let strides = self.strides();
        for (k, (&i, &d)) in idx.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < d, "index {i} out of range for dim {k} of extent {d}");
            off += i * strides[k];
        }
        off
    }

    /// Whether two shapes are broadcast-compatible under NumPy rules.
    pub fn broadcast_compatible(&self, other: &Shape) -> bool {
        self.broadcast(other).is_some()
    }

    /// Broadcasts two shapes under NumPy rules, returning the result shape,
    /// or `None` if they are incompatible.
    ///
    /// ```
    /// use pinpoint_tensor::Shape;
    /// let a = Shape::new(vec![4096, 12288]);
    /// let b = Shape::new(vec![12288]);
    /// assert_eq!(a.broadcast(&b), Some(a.clone()));
    /// ```
    #[allow(clippy::needless_range_loop)] // index math over two ragged ranks
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let r = self.rank().max(other.rank());
        let mut dims = vec![0usize; r];
        for i in 0..r {
            let a = if i < r - self.rank() {
                1
            } else {
                self.dims[i - (r - self.rank())]
            };
            let b = if i < r - other.rank() {
                1
            } else {
                other.dims[i - (r - other.rank())]
            };
            dims[i] = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
        }
        Some(Shape::new(dims))
    }

    /// Returns a new shape with dimension `axis` removed.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn without_axis(&self, axis: usize) -> Shape {
        assert!(axis < self.rank(), "axis {axis} out of range");
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Shape::new(dims)
    }

    /// Returns true when every extent is nonzero.
    pub fn is_nonempty(&self) -> bool {
        self.dims.iter().all(|&d| d > 0)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.size_bytes(), 4);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn numel_and_bytes() {
        let s = Shape::from([4096, 12288]);
        assert_eq!(s.numel(), 50_331_648);
        assert_eq!(s.size_bytes(), 201_326_592);
    }

    #[test]
    fn row_major_strides() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([7]).strides(), vec![1]);
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::from([2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.flat_index(&[i, j, k]);
                    assert!(off < s.numel());
                    assert!(seen.insert(off), "duplicate offset {off}");
                }
            }
        }
        assert_eq!(seen.len(), s.numel());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_index_rejects_out_of_range() {
        Shape::from([2, 2]).flat_index(&[2, 0]);
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::from([4, 1, 3]);
        let b = Shape::from([2, 3]);
        assert_eq!(a.broadcast(&b), Some(Shape::from([4, 2, 3])));
        // bias broadcast, the common DNN case
        let x = Shape::from([128, 12288]);
        let bias = Shape::from([12288]);
        assert_eq!(x.broadcast(&bias), Some(x.clone()));
        // incompatible
        assert_eq!(Shape::from([3]).broadcast(&Shape::from([4])), None);
    }

    #[test]
    fn broadcast_with_scalar() {
        let a = Shape::from([5, 6]);
        assert_eq!(a.broadcast(&Shape::scalar()), Some(a.clone()));
        assert_eq!(Shape::scalar().broadcast(&a), Some(a));
    }

    #[test]
    fn without_axis_removes_dim() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.without_axis(1), Shape::from([2, 4]));
    }

    #[test]
    fn display_formats_like_a_tuple() {
        assert_eq!(Shape::from([2, 12288]).to_string(), "(2, 12288)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn zero_extent_shapes() {
        let s = Shape::from([0, 4]);
        assert_eq!(s.numel(), 0);
        assert!(!s.is_nonempty());
    }
}
