//! Memory-behavior events: the unit of observation in the paper.
//!
//! The paper instruments PyTorch's device-memory allocators so that every
//! block is observed through four behaviors: `malloc`, `free`, `read`,
//! `write`. [`MemEvent`] is our record of one such behavior.

use std::fmt;

/// Identity of a device memory block.
///
/// A fresh id is minted at every successful `malloc`, even if the allocator
/// hands back a cached region at a previously used address — the paper's
/// unit of analysis is the *block* (one allocation lifetime), not the
/// address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// The four memory behaviors the paper traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Block allocation by the runtime's device allocator.
    Malloc,
    /// Block release back to the allocator.
    Free,
    /// A kernel consumed the block as an input operand.
    Read,
    /// A kernel produced or mutated the block.
    Write,
}

impl EventKind {
    /// True for `Read`/`Write` (an *access*, in the paper's ATI sense).
    pub fn is_access(self) -> bool {
        matches!(self, EventKind::Read | EventKind::Write)
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Malloc => "malloc",
            EventKind::Free => "free",
            EventKind::Read => "read",
            EventKind::Write => "write",
        };
        f.write_str(s)
    }
}

/// What a block stores, at the resolution the simulator tags allocations.
///
/// The paper's breakdown (Figs. 5–7) uses three coarse categories; this enum
/// keeps finer distinctions so the mapping can be studied (see
/// [`MemoryKind::category`] and `pinpoint-analysis`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Mini-batch input data staged on the device.
    Input,
    /// Trainable weights and biases.
    Weight,
    /// Gradients of trainable weights.
    WeightGrad,
    /// Optimizer state (momentum buffers, etc.).
    OptimizerState,
    /// Forward intermediate results (activations).
    Activation,
    /// Backward intermediate results (activation gradients).
    ActivationGrad,
    /// Scratch space private to one kernel (im2col buffers, etc.).
    Workspace,
    /// Anything else (evaluation/staging buffers, metrics, ...).
    Other,
}

impl MemoryKind {
    /// Maps to the paper's three-way breakdown using the default mapping
    /// (parameter-adjacent storage counts as parameters).
    pub fn category(self) -> Category {
        match self {
            MemoryKind::Input => Category::InputData,
            MemoryKind::Weight | MemoryKind::WeightGrad | MemoryKind::OptimizerState => {
                Category::Parameters
            }
            MemoryKind::Activation
            | MemoryKind::ActivationGrad
            | MemoryKind::Workspace
            | MemoryKind::Other => Category::Intermediates,
        }
    }
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryKind::Input => "input",
            MemoryKind::Weight => "weight",
            MemoryKind::WeightGrad => "weight_grad",
            MemoryKind::OptimizerState => "optimizer_state",
            MemoryKind::Activation => "activation",
            MemoryKind::ActivationGrad => "activation_grad",
            MemoryKind::Workspace => "workspace",
            MemoryKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// The paper's three memory-content categories (Figs. 5–7, after [12]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Mini-batch input data.
    InputData,
    /// Model parameters (weights; by default also their gradients and
    /// optimizer state).
    Parameters,
    /// Intermediate results (activations, their gradients, workspaces).
    Intermediates,
}

impl Category {
    /// All categories, in presentation order.
    pub const ALL: [Category; 3] = [
        Category::InputData,
        Category::Parameters,
        Category::Intermediates,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::InputData => "input data",
            Category::Parameters => "parameters",
            Category::Intermediates => "intermediate results",
        };
        f.write_str(s)
    }
}

/// One observed memory behavior of one device memory block.
#[derive(Debug, Clone, PartialEq)]
pub struct MemEvent {
    /// Simulated device time, nanoseconds since trace start.
    pub time_ns: u64,
    /// Which behavior occurred.
    pub kind: EventKind,
    /// The block the behavior applies to.
    pub block: BlockId,
    /// Block size in bytes (as requested at malloc).
    pub size: usize,
    /// Device-address-space offset of the block (for the Gantt y-axis).
    pub offset: usize,
    /// What the block stores.
    pub mem_kind: MemoryKind,
    /// Index into the trace's op-label table of the kernel responsible, if
    /// any (mallocs triggered by an op also carry it).
    pub op_label: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_classification() {
        assert!(EventKind::Read.is_access());
        assert!(EventKind::Write.is_access());
        assert!(!EventKind::Malloc.is_access());
        assert!(!EventKind::Free.is_access());
    }

    #[test]
    fn default_category_mapping() {
        assert_eq!(MemoryKind::Input.category(), Category::InputData);
        assert_eq!(MemoryKind::Weight.category(), Category::Parameters);
        assert_eq!(MemoryKind::WeightGrad.category(), Category::Parameters);
        assert_eq!(MemoryKind::OptimizerState.category(), Category::Parameters);
        assert_eq!(MemoryKind::Activation.category(), Category::Intermediates);
        assert_eq!(
            MemoryKind::ActivationGrad.category(),
            Category::Intermediates
        );
        assert_eq!(MemoryKind::Workspace.category(), Category::Intermediates);
        assert_eq!(MemoryKind::Other.category(), Category::Intermediates);
    }

    #[test]
    fn displays_are_lowercase_words() {
        assert_eq!(EventKind::Malloc.to_string(), "malloc");
        assert_eq!(MemoryKind::WeightGrad.to_string(), "weight_grad");
        assert_eq!(Category::Intermediates.to_string(), "intermediate results");
        assert_eq!(BlockId(7).to_string(), "blk7");
    }

    #[test]
    fn event_json_round_trip() {
        let e = MemEvent {
            time_ns: 123,
            kind: EventKind::Write,
            block: BlockId(5),
            size: 4096,
            offset: 512,
            mem_kind: MemoryKind::Activation,
            op_label: Some(2),
        };
        let mut t = crate::Trace::new();
        t.intern_label("a");
        t.intern_label("b");
        t.intern_label("op");
        t.push(e.clone());
        let mut buf = Vec::new();
        crate::export::write_json(&t, &mut buf).unwrap();
        let back = crate::export::read_json(&buf[..]).unwrap();
        assert_eq!(back.events(), &[e]);
    }
}
