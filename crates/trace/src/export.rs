//! Trace serialization: CSV for spreadsheet/plotting pipelines, JSON for
//! structured consumers.

use crate::trace::Trace;
use std::io::{self, Write};

/// Writes the trace's events as CSV with a header row.
///
/// Columns: `time_ns,kind,block,size,offset,mem_kind,category,op`.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "time_ns,kind,block,size,offset,mem_kind,category,op")?;
    for e in trace.events() {
        let op = e
            .op_label
            .and_then(|i| trace.label(i))
            .unwrap_or("");
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            e.time_ns,
            e.kind,
            e.block.0,
            e.size,
            e.offset,
            e.mem_kind,
            e.mem_kind.category(),
            op
        )?;
    }
    Ok(())
}

/// Serializes the whole trace (events, markers, label table) as JSON.
///
/// # Errors
///
/// Propagates serialization or I/O errors.
pub fn write_json<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    serde_json::to_writer(w, trace).map_err(io::Error::other)
}

/// Deserializes a trace previously written by [`write_json`].
///
/// # Errors
///
/// Returns an error if the input is not a valid JSON trace.
pub fn read_json<R: io::Read>(r: R) -> io::Result<Trace> {
    serde_json::from_reader(r).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BlockId, EventKind, MemoryKind};

    fn tiny_trace() -> Trace {
        let mut t = Trace::new();
        let op = t.intern_label("matmul_fwd");
        t.record(0, EventKind::Malloc, BlockId(0), 64, 0, MemoryKind::Input, None);
        t.record(3, EventKind::Read, BlockId(0), 64, 0, MemoryKind::Input, Some(op));
        t.mark(5, "iter:0");
        t
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&tiny_trace(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time_ns,kind"));
        assert_eq!(lines[1], "0,malloc,0,64,0,input,input data,");
        assert_eq!(lines[2], "3,read,0,64,0,input,input data,matmul_fwd");
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let t = tiny_trace();
        let mut buf = Vec::new();
        write_json(&t, &mut buf).unwrap();
        let back = read_json(&buf[..]).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.markers(), t.markers());
        assert_eq!(back.label(0), Some("matmul_fwd"));
        assert_eq!(back.events()[1], t.events()[1]);
    }

    #[test]
    fn read_json_rejects_garbage() {
        assert!(read_json(&b"not json"[..]).is_err());
    }
}
