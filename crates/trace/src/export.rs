//! Trace serialization: CSV for spreadsheet/plotting pipelines, JSON for
//! structured consumers.

use crate::event::{BlockId, EventKind, MemEvent, MemoryKind};
use crate::json::{self, Json};
use crate::trace::{Marker, Trace};
use std::fmt::Write as _;
use std::io::{self, Read, Write};

/// Quotes a CSV field when it contains a delimiter, quote, or line break
/// (RFC 4180: wrap in double quotes, double any inner quotes).
fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if s.contains([',', '"', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", s.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(s)
    }
}

/// Writes the trace's events as CSV with a header row.
///
/// Columns: `time_ns,kind,block,size,offset,mem_kind,category,op`. Op
/// labels containing commas, quotes, or line breaks are quoted per
/// RFC 4180.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "time_ns,kind,block,size,offset,mem_kind,category,op")?;
    for e in trace.events() {
        let op = e.op_label.and_then(|i| trace.label(i)).unwrap_or("");
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            e.time_ns,
            e.kind,
            e.block.0,
            e.size,
            e.offset,
            e.mem_kind,
            e.mem_kind.category(),
            csv_field(op)
        )?;
    }
    Ok(())
}

/// The JSON wire name of an event kind (`"Malloc"`-style, matching the
/// historical `serde`-derived layout).
pub fn kind_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Malloc => "Malloc",
        EventKind::Free => "Free",
        EventKind::Read => "Read",
        EventKind::Write => "Write",
    }
}

fn kind_from_name(s: &str) -> Option<EventKind> {
    Some(match s {
        "Malloc" => EventKind::Malloc,
        "Free" => EventKind::Free,
        "Read" => EventKind::Read,
        "Write" => EventKind::Write,
        _ => return None,
    })
}

/// The JSON wire name of a memory kind (`"Weight"`-style, matching the
/// historical `serde`-derived layout).
pub fn mem_kind_name(kind: MemoryKind) -> &'static str {
    match kind {
        MemoryKind::Input => "Input",
        MemoryKind::Weight => "Weight",
        MemoryKind::WeightGrad => "WeightGrad",
        MemoryKind::OptimizerState => "OptimizerState",
        MemoryKind::Activation => "Activation",
        MemoryKind::ActivationGrad => "ActivationGrad",
        MemoryKind::Workspace => "Workspace",
        MemoryKind::Other => "Other",
    }
}

fn mem_kind_from_name(s: &str) -> Option<MemoryKind> {
    Some(match s {
        "Input" => MemoryKind::Input,
        "Weight" => MemoryKind::Weight,
        "WeightGrad" => MemoryKind::WeightGrad,
        "OptimizerState" => MemoryKind::OptimizerState,
        "Activation" => MemoryKind::Activation,
        "ActivationGrad" => MemoryKind::ActivationGrad,
        "Workspace" => MemoryKind::Workspace,
        "Other" => MemoryKind::Other,
        _ => return None,
    })
}

/// Renders the whole trace (events, markers, label table) as a JSON string.
///
/// The wire format matches the historical `serde`-derived layout: enum
/// variants as `"Malloc"`-style strings, `BlockId` as a bare number,
/// `op_label` as a number or `null`.
pub fn json_string(trace: &Trace) -> String {
    // Pre-size: an event row serializes to ~120 bytes.
    let mut s = String::with_capacity(trace.len() * 128 + 256);
    s.push_str("{\"events\":[");
    for (i, e) in trace.events().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_event_json(&mut s, e);
    }
    s.push_str("],\"markers\":[");
    for (i, m) in trace.markers().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"time_ns\":{},\"event_index\":{},\"label\":",
            m.time_ns, m.event_index
        );
        json::write_str(&mut s, &m.label);
        s.push('}');
    }
    s.push_str("],\"labels\":[");
    for (i, l) in trace.labels().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        json::write_str(&mut s, l);
    }
    s.push_str("]}");
    s
}

/// Appends one event as a JSON object in the trace wire format (the
/// layout [`json_string`] emits per event) — shared by every producer
/// that must stay byte-identical to the trace exporter, such as the
/// query-result JSON the CLI and the serve daemon both emit.
pub fn write_event_json(s: &mut String, e: &MemEvent) {
    let _ = write!(
        s,
        "{{\"time_ns\":{},\"kind\":\"{}\",\"block\":{},\"size\":{},\"offset\":{},\"mem_kind\":\"{}\",\"op_label\":",
        e.time_ns,
        kind_name(e.kind),
        e.block.0,
        e.size,
        e.offset,
        mem_kind_name(e.mem_kind),
    );
    match e.op_label {
        Some(l) => {
            let _ = write!(s, "{l}");
        }
        None => s.push_str("null"),
    }
    s.push('}');
}

/// Serializes the whole trace (events, markers, label table) as JSON.
///
/// # Errors
///
/// Propagates serialization or I/O errors.
pub fn write_json<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(json_string(trace).as_bytes())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

fn field_u64(v: &Json, key: &str) -> io::Result<u64> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer field `{key}`")))
}

fn event_from_json(v: &Json) -> io::Result<MemEvent> {
    let kind_s = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("event missing `kind`"))?;
    let mem_kind_s = v
        .get("mem_kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("event missing `mem_kind`"))?;
    let op_label = match v.get("op_label") {
        None | Some(Json::Null) => None,
        Some(l) => Some(
            l.as_u64()
                .ok_or_else(|| bad("`op_label` must be a number or null"))? as u32,
        ),
    };
    Ok(MemEvent {
        time_ns: field_u64(v, "time_ns")?,
        kind: kind_from_name(kind_s).ok_or_else(|| bad(format!("unknown kind `{kind_s}`")))?,
        block: BlockId(field_u64(v, "block")?),
        size: field_u64(v, "size")? as usize,
        offset: field_u64(v, "offset")? as usize,
        mem_kind: mem_kind_from_name(mem_kind_s)
            .ok_or_else(|| bad(format!("unknown mem_kind `{mem_kind_s}`")))?,
        op_label,
    })
}

/// Deserializes a trace previously written by [`write_json`].
///
/// # Errors
///
/// Returns an error if the input is not a valid JSON trace.
pub fn read_json<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let root = json::parse(&text).map_err(bad)?;
    let mut trace = Trace::new();
    for l in root
        .get("labels")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing `labels` array"))?
    {
        let s = l.as_str().ok_or_else(|| bad("label must be a string"))?;
        trace.intern_label(s);
    }
    for e in root
        .get("events")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing `events` array"))?
    {
        trace.push(event_from_json(e)?);
    }
    for m in root
        .get("markers")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing `markers` array"))?
    {
        let label = m
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("marker missing `label`"))?;
        trace.push_marker(Marker {
            time_ns: field_u64(m, "time_ns")?,
            event_index: field_u64(m, "event_index")? as usize,
            label: label.to_string(),
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BlockId, EventKind, MemoryKind};

    fn tiny_trace() -> Trace {
        let mut t = Trace::new();
        let op = t.intern_label("matmul_fwd");
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            64,
            0,
            MemoryKind::Input,
            None,
        );
        t.record(
            3,
            EventKind::Read,
            BlockId(0),
            64,
            0,
            MemoryKind::Input,
            Some(op),
        );
        t.mark(5, "iter:0");
        t
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&tiny_trace(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time_ns,kind"));
        assert_eq!(lines[1], "0,malloc,0,64,0,input,input data,");
        assert_eq!(lines[2], "3,read,0,64,0,input,input data,matmul_fwd");
    }

    #[test]
    fn csv_quotes_labels_with_delimiters() {
        let mut t = Trace::new();
        let tricky = t.intern_label("conv2d[3,3],\"pad\"=same\nline2");
        let plain = t.intern_label("relu");
        t.record(
            0,
            EventKind::Read,
            BlockId(0),
            8,
            0,
            MemoryKind::Other,
            Some(tricky),
        );
        t.record(
            1,
            EventKind::Read,
            BlockId(0),
            8,
            0,
            MemoryKind::Other,
            Some(plain),
        );
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        // the tricky label is wrapped in quotes with inner quotes doubled
        assert!(
            s.contains(",\"conv2d[3,3],\"\"pad\"\"=same\nline2\"\n"),
            "{s}"
        );
        // the plain label stays bare
        assert!(s.ends_with(",relu\n"), "{s}");
        // quotes stay balanced, so CSV parsers see one logical record
        assert_eq!(s.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let t = tiny_trace();
        let mut buf = Vec::new();
        write_json(&t, &mut buf).unwrap();
        let back = read_json(&buf[..]).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.markers(), t.markers());
        assert_eq!(back.label(0), Some("matmul_fwd"));
        assert_eq!(back.events()[1], t.events()[1]);
    }

    #[test]
    fn read_json_rejects_garbage() {
        assert!(read_json(&b"not json"[..]).is_err());
    }
}
