//! A minimal JSON reader/writer, kept in-repo so trace export works in
//! hermetic build environments with no access to crates.io.
//!
//! The value model and the derived-looking wire format (`"Malloc"` for enum
//! variants, bare numbers for newtype ids, `null` for `None`) match what the
//! previous `serde_json`-based exporter produced, so traces written by older
//! builds still load.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; u64-exact integers round-trip via
    /// [`Json::as_u64`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (irrelevant for JSON).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Escapes and appends a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {pos}",
            c as char,
            pos = *pos
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (multi-byte safe)
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("\"hi\\n\"").unwrap().as_str(), Some("hi\n"));
        assert_eq!(parse("-1.5").unwrap(), Json::Num(-1.5));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn escapes_control_characters() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\n\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\n\\u0001\"");
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\n\u{1}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn large_u64_round_trip() {
        // u64 values beyond 2^53 lose precision in f64; trace timestamps and
        // sizes stay far below that, but the parser must not reject them
        let v = parse("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), Some(9007199254740992));
    }
}
