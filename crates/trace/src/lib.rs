//! # pinpoint-trace
//!
//! Device-memory event traces for the `pinpoint` reproduction of
//! *"Pinpointing the Memory Behaviors of DNN Training"* (ISPASS 2021).
//!
//! The paper's methodology instruments the memory allocators of the training
//! runtime so that every device memory block is observed through its four
//! behaviors — `malloc`, `free`, `read`, `write` — each timestamped and
//! annotated with the block's size, device offset, and content kind. This
//! crate is that instrumentation record:
//!
//! * [`MemEvent`] / [`EventKind`] / [`MemoryKind`] — one observed behavior;
//! * [`Trace`] — the append-only event log with iteration markers and an
//!   interned op-label table;
//! * [`BlockLifetime`] — a block's full life (alloc → accesses → free),
//!   including its access-time intervals (the paper's ATI metric);
//! * [`export`] — CSV / JSON serialization.
//!
//! # Examples
//!
//! ```
//! use pinpoint_trace::{Trace, EventKind, MemoryKind, BlockId};
//!
//! let mut trace = Trace::new();
//! trace.record(0, EventKind::Malloc, BlockId(0), 4096, 0, MemoryKind::Activation, None);
//! trace.record(1_000, EventKind::Write, BlockId(0), 4096, 0, MemoryKind::Activation, None);
//! trace.record(26_000, EventKind::Read, BlockId(0), 4096, 0, MemoryKind::Activation, None);
//! trace.record(27_000, EventKind::Free, BlockId(0), 4096, 0, MemoryKind::Activation, None);
//! trace.validate().expect("well-formed");
//!
//! let lifetimes = trace.lifetimes();
//! let block = &lifetimes[&BlockId(0)];
//! assert_eq!(block.access_intervals_ns(), vec![25_000]); // a 25 µs ATI
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
pub mod export;
pub mod json;
mod sink;
#[allow(clippy::module_inception)]
mod trace;

pub use event::{BlockId, Category, EventKind, MemEvent, MemoryKind};
pub use sink::TraceSink;
pub use trace::{BlockLifetime, Marker, PeakUsage, Trace};
