//! The [`TraceSink`] abstraction: where observed memory behaviors go.
//!
//! The instrumented device historically appended every event to an
//! in-memory [`Trace`]. That is still the default — [`Trace`] implements
//! [`TraceSink`] — but full-scale training runs produce traces far larger
//! than RAM, so the profiler can instead stream events into any sink, such
//! as `pinpoint-store`'s chunked on-disk writer, which spills events to
//! disk as they are recorded.

use crate::event::MemEvent;
use crate::trace::Trace;
use std::io;

/// A destination for streamed memory-behavior events.
///
/// Implementations must preserve the stream invariants the device
/// guarantees: events arrive in non-decreasing time order, and marker
/// positions are determined by the number of events recorded before them.
///
/// Recording methods are infallible by signature so the hot instrumented
/// path stays simple; sinks that can fail (file writers) defer errors and
/// surface the first one from [`TraceSink::finish`].
pub trait TraceSink {
    /// Interns an op label, returning its index for use in events.
    ///
    /// Repeated calls with the same label must return the same index, and
    /// indices must be dense (0, 1, 2, ... in first-seen order) so label
    /// tables serialize identically across sink implementations.
    fn intern_label(&mut self, label: &str) -> u32;

    /// Records one event. Events arrive in non-decreasing `time_ns` order.
    fn record_event(&mut self, event: MemEvent);

    /// Records a boundary marker (e.g. `"iter:3"`) at the current position
    /// in the event stream.
    fn record_marker(&mut self, time_ns: u64, label: &str);

    /// Number of events recorded so far (markers bind to this position).
    fn event_count(&self) -> u64;

    /// Flushes buffered state and surfaces any deferred error.
    ///
    /// Called once when the producer is done; recording after `finish` is
    /// a contract violation implementations may panic on.
    ///
    /// # Errors
    ///
    /// Returns the first deferred I/O error, if any.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl TraceSink for Trace {
    fn intern_label(&mut self, label: &str) -> u32 {
        Trace::intern_label(self, label)
    }

    fn record_event(&mut self, event: MemEvent) {
        self.push(event);
    }

    fn record_marker(&mut self, time_ns: u64, label: &str) {
        self.mark(time_ns, label);
    }

    fn event_count(&self) -> u64 {
        self.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BlockId, EventKind, MemoryKind};

    #[test]
    fn trace_is_a_sink() {
        let mut t = Trace::new();
        let sink: &mut dyn TraceSink = &mut t;
        let op = sink.intern_label("matmul");
        assert_eq!(op, sink.intern_label("matmul"));
        sink.record_event(MemEvent {
            time_ns: 5,
            kind: EventKind::Malloc,
            block: BlockId(0),
            size: 64,
            offset: 0,
            mem_kind: MemoryKind::Weight,
            op_label: Some(op),
        });
        sink.record_marker(6, "iter:0");
        assert_eq!(sink.event_count(), 1);
        sink.finish().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.markers()[0].event_index, 1);
        assert_eq!(t.markers()[0].label, "iter:0");
    }
}
