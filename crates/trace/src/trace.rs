//! The trace container and per-block lifetime extraction.

use crate::event::{BlockId, Category, EventKind, MemEvent, MemoryKind};
use std::collections::BTreeMap;

/// A named point in time, used to mark iteration and epoch boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// Simulated time of the marker.
    pub time_ns: u64,
    /// Number of events already recorded when the marker was placed —
    /// an unambiguous split point even when timestamps collide.
    pub event_index: usize,
    /// Marker label, e.g. `"iter:3"` or `"epoch:1"`.
    pub label: String,
}

/// An append-only log of memory behaviors plus boundary markers.
///
/// Events are expected (and verified by [`Trace::validate`]) to be in
/// non-decreasing time order, as they come from a single simulated device
/// clock.
///
/// # Examples
///
/// ```
/// use pinpoint_trace::{Trace, EventKind, MemoryKind, BlockId};
///
/// let mut t = Trace::new();
/// let op = t.intern_label("matmul");
/// t.record(0, EventKind::Malloc, BlockId(0), 1024, 0, MemoryKind::Activation, None);
/// t.record(10, EventKind::Write, BlockId(0), 1024, 0, MemoryKind::Activation, Some(op));
/// t.record(20, EventKind::Free, BlockId(0), 1024, 0, MemoryKind::Activation, None);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.lifetimes().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<MemEvent>,
    markers: Vec<Marker>,
    labels: Vec<String>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an op label, returning its index for use in events.
    ///
    /// Repeated calls with the same label return the same index.
    pub fn intern_label(&mut self, label: &str) -> u32 {
        if let Some(i) = self.labels.iter().position(|l| l == label) {
            return i as u32;
        }
        self.labels.push(label.to_string());
        (self.labels.len() - 1) as u32
    }

    /// Resolves a label index to its string, if valid.
    pub fn label(&self, idx: u32) -> Option<&str> {
        self.labels.get(idx as usize).map(String::as_str)
    }

    /// All interned labels in index order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Appends one event.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        time_ns: u64,
        kind: EventKind,
        block: BlockId,
        size: usize,
        offset: usize,
        mem_kind: MemoryKind,
        op_label: Option<u32>,
    ) {
        self.events.push(MemEvent {
            time_ns,
            kind,
            block,
            size,
            offset,
            mem_kind,
            op_label,
        });
    }

    /// Appends a pre-built event.
    pub fn push(&mut self, event: MemEvent) {
        self.events.push(event);
    }

    /// Adds a boundary marker (iteration/epoch) at the current event index.
    pub fn mark(&mut self, time_ns: u64, label: impl Into<String>) {
        self.markers.push(Marker {
            time_ns,
            event_index: self.events.len(),
            label: label.into(),
        });
    }

    /// Appends a pre-built marker with an explicit event index (used when
    /// reloading a serialized trace).
    pub fn push_marker(&mut self, marker: Marker) {
        self.markers.push(marker);
    }

    /// Slices the events belonging to marker `i` (from that marker up to the
    /// next one, or to the end of the trace for the last marker).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn events_of_marker(&self, i: usize) -> &[MemEvent] {
        let start = self.markers[i].event_index;
        let end = self
            .markers
            .get(i + 1)
            .map(|m| m.event_index)
            .unwrap_or(self.events.len());
        &self.events[start..end]
    }

    /// All events, in record order.
    pub fn events(&self) -> &[MemEvent] {
        &self.events
    }

    /// All markers, in record order.
    pub fn markers(&self) -> &[Marker] {
        &self.markers
    }

    /// Markers whose label starts with `prefix`.
    pub fn markers_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a Marker> {
        self.markers
            .iter()
            .filter(move |m| m.label.starts_with(prefix))
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event (0 for an empty trace).
    pub fn end_time_ns(&self) -> u64 {
        self.events.last().map(|e| e.time_ns).unwrap_or(0)
    }

    /// Checks trace invariants, returning a description of the first
    /// violation found.
    ///
    /// Invariants:
    /// * event times are non-decreasing;
    /// * each block is malloc'd at most once and freed at most once;
    /// * accesses and the free of a block happen after its malloc;
    /// * no access happens after the block's free.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable description of the violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_t = 0u64;
        #[derive(Clone, Copy, PartialEq)]
        enum St {
            Unborn,
            Live,
            Freed,
        }
        let mut state: BTreeMap<BlockId, St> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if e.time_ns < last_t {
                return Err(format!(
                    "event {i} time {} precedes previous time {last_t}",
                    e.time_ns
                ));
            }
            last_t = e.time_ns;
            let st = state.entry(e.block).or_insert(St::Unborn);
            match e.kind {
                EventKind::Malloc => {
                    if *st != St::Unborn {
                        return Err(format!("event {i}: double malloc of {}", e.block));
                    }
                    *st = St::Live;
                }
                EventKind::Free => {
                    if *st != St::Live {
                        return Err(format!("event {i}: free of non-live {}", e.block));
                    }
                    *st = St::Freed;
                }
                EventKind::Read | EventKind::Write => {
                    if *st != St::Live {
                        return Err(format!("event {i}: access to non-live {}", e.block));
                    }
                }
            }
        }
        Ok(())
    }

    /// Extracts per-block lifetime records, keyed by block id.
    ///
    /// Blocks never freed get `free_time_ns == None` (lifetime extends to
    /// the end of the trace — e.g. parameters).
    pub fn lifetimes(&self) -> BTreeMap<BlockId, BlockLifetime> {
        let mut map: BTreeMap<BlockId, BlockLifetime> = BTreeMap::new();
        for e in &self.events {
            let entry = map.entry(e.block).or_insert_with(|| BlockLifetime {
                block: e.block,
                size: e.size,
                offset: e.offset,
                mem_kind: e.mem_kind,
                malloc_time_ns: e.time_ns,
                free_time_ns: None,
                accesses: Vec::new(),
            });
            match e.kind {
                EventKind::Malloc => {
                    entry.malloc_time_ns = e.time_ns;
                    entry.size = e.size;
                    entry.offset = e.offset;
                    entry.mem_kind = e.mem_kind;
                }
                EventKind::Free => entry.free_time_ns = Some(e.time_ns),
                EventKind::Read | EventKind::Write => {
                    entry.accesses.push((e.time_ns, e.kind));
                }
            }
        }
        map
    }

    /// Returns the peak over time of total live bytes per paper category,
    /// plus the overall peak, by sweeping mallocs/frees.
    ///
    /// This is the quantity behind the occupation-breakdown figures: the
    /// footprint a training iteration actually needs from the device.
    pub fn peak_live_bytes(&self) -> PeakUsage {
        let mut live: BTreeMap<Category, i64> = BTreeMap::new();
        let mut total: i64 = 0;
        let mut peak_total: i64 = 0;
        let mut at_peak: BTreeMap<Category, i64> = BTreeMap::new();
        for e in &self.events {
            let cat = e.mem_kind.category();
            match e.kind {
                EventKind::Malloc => {
                    *live.entry(cat).or_insert(0) += e.size as i64;
                    total += e.size as i64;
                    if total > peak_total {
                        peak_total = total;
                        at_peak = live.clone();
                    }
                }
                EventKind::Free => {
                    *live.entry(cat).or_insert(0) -= e.size as i64;
                    total -= e.size as i64;
                }
                _ => {}
            }
        }
        PeakUsage {
            peak_total_bytes: peak_total.max(0) as u64,
            at_peak_by_category: Category::ALL
                .iter()
                .map(|c| (*c, at_peak.get(c).copied().unwrap_or(0).max(0) as u64))
                .collect(),
        }
    }
}

/// Total footprint at the moment of peak usage, split by category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeakUsage {
    /// Largest total live bytes seen at any instant.
    pub peak_total_bytes: u64,
    /// Live bytes per category at that instant (same instant for all).
    pub at_peak_by_category: Vec<(Category, u64)>,
}

impl PeakUsage {
    /// Live bytes of one category at the peak instant.
    pub fn bytes(&self, cat: Category) -> u64 {
        self.at_peak_by_category
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    }

    /// Fraction of the peak footprint held by one category (0 if peak is 0).
    pub fn fraction(&self, cat: Category) -> f64 {
        if self.peak_total_bytes == 0 {
            0.0
        } else {
            self.bytes(cat) as f64 / self.peak_total_bytes as f64
        }
    }
}

/// One device memory block's full observed life.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockLifetime {
    /// Block identity.
    pub block: BlockId,
    /// Size in bytes.
    pub size: usize,
    /// Device-address offset.
    pub offset: usize,
    /// Content tag.
    pub mem_kind: MemoryKind,
    /// Allocation time.
    pub malloc_time_ns: u64,
    /// Free time, if the block was freed before the trace ended.
    pub free_time_ns: Option<u64>,
    /// `(time, kind)` of every read/write, in time order.
    pub accesses: Vec<(u64, EventKind)>,
}

impl BlockLifetime {
    /// Lifetime span in nanoseconds; `trace_end` caps never-freed blocks.
    pub fn duration_ns(&self, trace_end: u64) -> u64 {
        self.free_time_ns
            .unwrap_or(trace_end)
            .saturating_sub(self.malloc_time_ns)
    }

    /// Access-time intervals: elapsed time between adjacent accesses to this
    /// block (the paper's ATI metric, Fig. 3).
    pub fn access_intervals_ns(&self) -> Vec<u64> {
        self.accesses.windows(2).map(|w| w[1].0 - w[0].0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            100,
            0,
            MemoryKind::Weight,
            None,
        );
        t.record(
            5,
            EventKind::Write,
            BlockId(0),
            100,
            0,
            MemoryKind::Weight,
            None,
        );
        t.record(
            10,
            EventKind::Malloc,
            BlockId(1),
            200,
            128,
            MemoryKind::Activation,
            None,
        );
        t.record(
            15,
            EventKind::Write,
            BlockId(1),
            200,
            128,
            MemoryKind::Activation,
            None,
        );
        t.record(
            40,
            EventKind::Read,
            BlockId(1),
            200,
            128,
            MemoryKind::Activation,
            None,
        );
        t.record(
            50,
            EventKind::Free,
            BlockId(1),
            200,
            128,
            MemoryKind::Activation,
            None,
        );
        t.record(
            60,
            EventKind::Read,
            BlockId(0),
            100,
            0,
            MemoryKind::Weight,
            None,
        );
        t
    }

    #[test]
    fn validates_well_formed_trace() {
        assert!(sample_trace().validate().is_ok());
    }

    #[test]
    fn rejects_time_regression() {
        let mut t = Trace::new();
        t.record(
            10,
            EventKind::Malloc,
            BlockId(0),
            1,
            0,
            MemoryKind::Other,
            None,
        );
        t.record(
            5,
            EventKind::Free,
            BlockId(0),
            1,
            0,
            MemoryKind::Other,
            None,
        );
        assert!(t.validate().unwrap_err().contains("precedes"));
    }

    #[test]
    fn rejects_double_malloc_and_use_after_free() {
        let mut t = Trace::new();
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            1,
            0,
            MemoryKind::Other,
            None,
        );
        t.record(
            1,
            EventKind::Malloc,
            BlockId(0),
            1,
            0,
            MemoryKind::Other,
            None,
        );
        assert!(t.validate().unwrap_err().contains("double malloc"));

        let mut t = Trace::new();
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            1,
            0,
            MemoryKind::Other,
            None,
        );
        t.record(
            1,
            EventKind::Free,
            BlockId(0),
            1,
            0,
            MemoryKind::Other,
            None,
        );
        t.record(
            2,
            EventKind::Read,
            BlockId(0),
            1,
            0,
            MemoryKind::Other,
            None,
        );
        assert!(t.validate().unwrap_err().contains("non-live"));
    }

    #[test]
    fn lifetimes_capture_span_and_accesses() {
        let t = sample_trace();
        let lt = t.lifetimes();
        let b1 = &lt[&BlockId(1)];
        assert_eq!(b1.malloc_time_ns, 10);
        assert_eq!(b1.free_time_ns, Some(50));
        assert_eq!(b1.duration_ns(t.end_time_ns()), 40);
        assert_eq!(b1.access_intervals_ns(), vec![25]);
        // never-freed weight extends to trace end
        let b0 = &lt[&BlockId(0)];
        assert_eq!(b0.free_time_ns, None);
        assert_eq!(b0.duration_ns(t.end_time_ns()), 60);
        assert_eq!(b0.access_intervals_ns(), vec![55]);
    }

    #[test]
    fn peak_usage_tracks_concurrent_live_bytes() {
        let t = sample_trace();
        let peak = t.peak_live_bytes();
        assert_eq!(peak.peak_total_bytes, 300);
        assert_eq!(peak.bytes(Category::Parameters), 100);
        assert_eq!(peak.bytes(Category::Intermediates), 200);
        assert!((peak.fraction(Category::Parameters) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn label_interning_dedups() {
        let mut t = Trace::new();
        let a = t.intern_label("matmul");
        let b = t.intern_label("relu");
        let c = t.intern_label("matmul");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(t.label(b), Some("relu"));
        assert_eq!(t.label(99), None);
    }

    #[test]
    fn markers_filter_by_prefix() {
        let mut t = Trace::new();
        t.mark(0, "iter:0");
        t.mark(100, "epoch:0");
        t.mark(200, "iter:1");
        let iters: Vec<_> = t.markers_with_prefix("iter:").collect();
        assert_eq!(iters.len(), 2);
        assert_eq!(iters[1].time_ns, 200);
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.end_time_ns(), 0);
        assert!(t.validate().is_ok());
        assert_eq!(t.peak_live_bytes().peak_total_bytes, 0);
    }
}
