//! The occupation-breakdown sweeps of Figs. 5, 6 and 7: where does device
//! memory go — input data, parameters, or intermediate results — across
//! architectures, batch sizes and dataset geometries?
//!
//! Run with: `cargo run --release --example breakdown_sweep`

use pinpoint::core::figures::{fig5_breakdown, fig6_alexnet, fig7_resnet};
use pinpoint::core::report::render_breakdown;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows5 = fig5_breakdown(128)?;
    print!(
        "{}",
        render_breakdown(
            "Fig 5 — memory occupation of typical DNN training (bs 128)",
            &rows5
        )
    );

    let batches = [32, 64, 128, 256];
    let rows6 = fig6_alexnet(&batches)?;
    print!(
        "{}",
        render_breakdown(
            "\nFig 6 — AlexNet breakdown vs batch size (CIFAR-100 then ImageNet)",
            &rows6
        )
    );

    let rows7 = fig7_resnet(&[32, 128])?;
    print!(
        "{}",
        render_breakdown(
            "\nFig 7 — ResNet-18/34/50/101/152 breakdown vs batch size",
            &rows7
        )
    );

    println!("\nclaims check:");
    let param_heavy = rows5
        .iter()
        .filter(|r| r.fractions().1 > 0.4)
        .map(|r| r.label.clone())
        .collect::<Vec<_>>();
    println!(
        "  C4 parameters are a minor fraction for most DNNs: {} of {} above 40% ({:?})",
        param_heavy.len(),
        rows5.len(),
        param_heavy
    );
    Ok(())
}
