//! Head-to-head of the two memory-pressure remedies the paper points at,
//! measured through the same instrumentation:
//!
//! * **swapping** (the paper's §IV direction, Equation-1-safe planner);
//! * **activation checkpointing** (recomputation).
//!
//! Run with: `cargo run --release -p pinpoint --example memory_reduction`

use pinpoint::analysis::{apply, plan};
use pinpoint::core::report::{human_bytes, human_time};
use pinpoint::core::{profile, ProfileConfig};
use pinpoint::data::DatasetSpec;
use pinpoint::device::TransferModel;
use pinpoint::models::{Architecture, ResNetDepth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Architecture::ResNet(ResNetDepth::R50);
    let batch = 32;
    let tm = TransferModel::titan_x_pascal_pinned();

    // baseline
    let base_cfg = ProfileConfig::breakdown_sweep(arch, DatasetSpec::imagenet(), batch);
    let base = profile(&base_cfg)?;
    let base_peak = base.trace.peak_live_bytes().peak_total_bytes;
    let base_time = base.duration_ns / base.iterations as u64;
    println!(
        "{} / ImageNet / bs{batch} baseline: peak {}, iteration {}",
        arch.name(),
        human_bytes(base_peak),
        human_time(base_time)
    );

    // remedy 1: Equation-1-safe swapping (zero added critical-path time).
    // Equation 1 is per-gap; verify the whole plan also schedules on the
    // shared PCIe link, thinning it if contended.
    let mut swap_plan = plan(&base.trace, &tm, 10_000_000);
    let contention = pinpoint::analysis::check_contention(&swap_plan, &tm);
    println!(
        "
link schedule: {} (d2h {:.0}% busy, h2d {:.0}% busy, {} late)",
        if contention.feasible {
            "feasible"
        } else {
            "CONTENDED"
        },
        contention.d2h_busy_fraction * 100.0,
        contention.h2d_busy_fraction * 100.0,
        contention.late().count()
    );
    if !contention.feasible {
        swap_plan = pinpoint::analysis::thin_to_feasible(&swap_plan, &tm);
        println!("  thinned to {} decisions", swap_plan.decisions.len());
    }
    let swapped = apply(&base.trace, &swap_plan);
    println!(
        "\nswapping   : peak {} ({:+.1}%), iteration time unchanged, {} PCIe traffic, {} decisions",
        human_bytes(swapped.peak_live_bytes().peak_total_bytes),
        (swapped.peak_live_bytes().peak_total_bytes as f64 / base_peak as f64 - 1.0) * 100.0,
        human_bytes(swap_plan.transfer_bytes),
        swap_plan.decisions.len()
    );

    // remedy 2: activation checkpointing at several densities
    for keep in [2usize, 4, 8] {
        let mut cfg = ProfileConfig::breakdown_sweep(arch, DatasetSpec::imagenet(), batch);
        cfg.checkpoint_every = Some(keep);
        let r = profile(&cfg)?;
        let peak = r.trace.peak_live_bytes().peak_total_bytes;
        let time = r.duration_ns / r.iterations as u64;
        println!(
            "ckpt 1/{keep}   : peak {} ({:+.1}%), iteration {} ({:+.1}%)",
            human_bytes(peak),
            (peak as f64 / base_peak as f64 - 1.0) * 100.0,
            human_time(time),
            (time as f64 / base_time as f64 - 1.0) * 100.0
        );
    }

    println!(
        "\nreading: per-gap Equation 1 admits far more swapping than the shared\n\
         PCIe link can carry; contention-aware thinning keeps only the big,\n\
         long-idle blocks — exactly the paper's Fig. 4 outliers. Checkpointing\n\
         buys deeper cuts but pays in recompute time."
    );
    Ok(())
}
