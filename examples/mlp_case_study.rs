//! The paper's full MLP case study, run *concretely*: real f32 training on
//! the two-blobs task while the allocator instrumentation records every
//! memory behavior. Reproduces the data behind Figs. 2, 3 and 4 and
//! exports the raw trace as CSV for external plotting.
//!
//! Run with: `cargo run --release --example mlp_case_study`

use pinpoint::analysis::{sift, violin_sorted, AtiDataset, OutlierCriteria};
use pinpoint::core::report::{human_bytes, human_time};
use pinpoint::core::{profile, EpochEval, ProfileConfig};
use pinpoint::models::{Architecture, MlpConfig};
use pinpoint::nn::exec::ExecMode;
use pinpoint::trace::export::write_csv;
use std::fs::File;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- concrete training: the loss must actually fall -----------------
    let mut cfg = ProfileConfig::mlp_case_study(60);
    cfg.mode = ExecMode::Concrete;
    cfg.arch = Architecture::Mlp(MlpConfig {
        in_features: 2,
        hidden: 512, // concrete-exec-friendly width; memory shape unchanged
        classes: 2,
    });
    let report = profile(&cfg)?;
    println!(
        "== concrete MLP training on two-blobs ({} iterations) ==",
        report.iterations
    );
    println!(
        "  loss: {:.4} -> {:.4}",
        report.loss_history.first().unwrap(),
        report.loss_history.last().unwrap()
    );

    // --- Fig 3: ATI distribution ----------------------------------------
    let atis = AtiDataset::from_trace(&report.trace);
    let cdf = atis.cdf();
    println!("\n== Fig 3: ATI distribution ({} behaviors) ==", cdf.len());
    for (v, p) in cdf.summary_rows(10) {
        println!("  p{:<3.0} {:>12}", p * 100.0, human_time(v));
    }
    let samples: Vec<f64> = atis
        .sorted_intervals_ns()
        .iter()
        .map(|&v| v as f64)
        .collect();
    if let Some(v) = violin_sorted(&samples, 64) {
        println!(
            "  violin: median {} IQR [{}, {}]",
            human_time(v.median as u64),
            human_time(v.q1 as u64),
            human_time(v.q3 as u64)
        );
    }

    // --- Fig 4: outliers via a per-epoch evaluation buffer --------------
    let mut cfg4 = ProfileConfig::mlp_case_study(401);
    cfg4.epoch_eval = Some(EpochEval {
        iters_per_epoch: 200,
        buffer_bytes: 64_000_000,
    });
    let report4 = profile(&cfg4)?;
    let atis4 = AtiDataset::from_trace(&report4.trace);
    let outliers = sift(
        &atis4,
        OutlierCriteria {
            min_ati_ns: 1_000_000,
            min_size_bytes: 32_000_000,
        },
    );
    println!(
        "\n== Fig 4: outlier sifting over {} behaviors ==",
        outliers.total_behaviors
    );
    for o in &outliers.outliers {
        let bound = cfg4.device.transfer.max_swap_bytes(o.interval_ns);
        println!(
            "  {}: ATI {} size {} -> Eq1 bound {} ({})",
            o.block,
            human_time(o.interval_ns),
            human_bytes(o.size as u64),
            human_bytes(bound as u64),
            if (o.size as f64) <= bound {
                "swappable"
            } else {
                "not swappable"
            }
        );
    }

    // --- per-operator memory traffic -------------------------------------
    let stats = pinpoint::analysis::op_stats(&report.trace);
    println!("\n== top operators by memory traffic ==");
    for s in stats.iter().take(6) {
        println!(
            "  {:<24} {:>10} touched ({} reads, {} writes, {} mallocs)",
            s.label,
            human_bytes(s.bytes_total()),
            s.reads,
            s.writes,
            s.mallocs
        );
    }

    // --- raw trace export ------------------------------------------------
    let path = std::env::temp_dir().join("pinpoint_mlp_trace.csv");
    write_csv(&report.trace, File::create(&path)?)?;
    println!("\nraw trace written to {}", path.display());
    Ok(())
}
