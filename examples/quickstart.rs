//! Quickstart: trace five iterations of the paper's Fig. 1 MLP and verify
//! the headline observation — DNN training has obvious iterative memory
//! access patterns.
//!
//! Run with: `cargo run --release --example quickstart`

use pinpoint::analysis::AtiDataset;
use pinpoint::core::figures::{fig1_topology, fig2_gantt};
use pinpoint::core::report::{human_time, render_fig2};
use pinpoint::core::{profile, ProfileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig 1: MLP topology (star = mat_mul, plus = add_bias, f = ReLU) ==");
    for (i, op) in fig1_topology().iter().enumerate() {
        println!("  {}: {}", i, op);
    }

    println!("\n== Fig 2: Gantt chart of the first five training iterations ==");
    let fig2 = fig2_gantt(5)?;
    print!("{}", render_fig2(&fig2, 12));

    println!("\n== the same run, through the raw profiler API ==");
    let report = profile(&ProfileConfig::mlp_case_study(5))?;
    report.trace.validate().expect("trace invariants hold");
    println!(
        "  {} events over {} simulated; allocator peak {} reserved / {} allocated",
        report.trace.len(),
        human_time(report.duration_ns),
        report.alloc_stats.peak_reserved_bytes,
        report.alloc_stats.peak_allocated_bytes,
    );
    let atis = AtiDataset::from_trace(&report.trace);
    println!(
        "  {} access-time intervals measured; {:.1}% at or below 25 us",
        atis.len(),
        atis.fraction_at_or_below(25_000) * 100.0
    );

    // render the actual Fig. 2 as an SVG
    let svg = pinpoint::analysis::gantt_svg(&fig2.rects, &pinpoint::analysis::SvgConfig::default());
    let path = std::env::temp_dir().join("pinpoint_fig2_gantt.svg");
    std::fs::write(&path, svg)?;
    println!("  Fig 2 Gantt chart rendered to {}", path.display());
    Ok(())
}
