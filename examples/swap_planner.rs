//! The paper's §IV future work, implemented: an automatic planner that
//! takes the observed memory access patterns and schedules zero-overhead
//! swaps (Equation 1 guarantees the PCIe round trip hides inside the access
//! gap).
//!
//! Run with: `cargo run --release --example swap_planner`

use pinpoint::analysis::plan;
use pinpoint::core::report::{human_bytes, human_time};
use pinpoint::core::{profile, EpochEval, ProfileConfig};
use pinpoint::device::{bandwidth_test, TransferModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // the paper first measures PCIe bandwidth with CUDA's bandwidthTest
    let tm = TransferModel::titan_x_pascal_pinned();
    let bw = bandwidth_test(&tm, 32 << 20);
    println!(
        "bandwidthTest (simulated, 32 MiB pinned): h2d {:.2} GB/s, d2h {:.2} GB/s",
        bw.h2d_bytes_per_sec / 1e9,
        bw.d2h_bytes_per_sec / 1e9
    );

    // profile MLP training with a large per-epoch evaluation buffer — the
    // workload whose outliers Fig. 4 says are the swap targets
    let mut cfg = ProfileConfig::mlp_case_study(801);
    cfg.epoch_eval = Some(EpochEval {
        iters_per_epoch: 400,
        buffer_bytes: 256_000_000,
    });
    let report = profile(&cfg)?;
    println!(
        "\nprofiled {} iterations, {} events, peak footprint {}",
        report.iterations,
        report.trace.len(),
        human_bytes(report.trace.peak_live_bytes().peak_total_bytes)
    );

    // plan zero-overhead swaps from the observed access pattern
    let swap_plan = plan(&report.trace, &tm, 1_000_000);
    println!("\nswap plan ({} decisions):", swap_plan.decisions.len());
    for d in swap_plan.decisions.iter().take(10) {
        println!(
            "  evict {} ({}) at {}, prefetch before {} — gap {}",
            d.block,
            human_bytes(d.size as u64),
            human_time(d.evict_at_ns),
            human_time(d.needed_at_ns),
            human_time(d.interval_ns())
        );
    }
    println!(
        "\npeak: {} -> {} (saves {}, {:.1}%), at {} of PCIe traffic",
        human_bytes(swap_plan.baseline_peak_bytes),
        human_bytes(swap_plan.planned_peak_bytes),
        human_bytes(swap_plan.savings_bytes()),
        swap_plan.savings_fraction() * 100.0,
        human_bytes(swap_plan.transfer_bytes)
    );

    // the payoff case: a big conv net, where early-layer activations are
    // written in the forward pass and only read again deep in the backward
    // pass — gaps long enough for Equation 1 at hundreds of MB
    use pinpoint::data::DatasetSpec;
    use pinpoint::models::Architecture;
    let cfg = ProfileConfig::breakdown_sweep(Architecture::Vgg16, DatasetSpec::imagenet(), 64);
    let report = profile(&cfg)?;
    let swap_plan = plan(&report.trace, &tm, 10_000_000);
    println!(
        "\nVGG-16 / ImageNet / bs64 ({} iterations, iteration ≈ {}):",
        report.iterations,
        human_time(report.duration_ns / report.iterations as u64)
    );
    println!(
        "  {} swap decisions; peak {} -> {} (saves {}, {:.1}%)",
        swap_plan.decisions.len(),
        human_bytes(swap_plan.baseline_peak_bytes),
        human_bytes(swap_plan.planned_peak_bytes),
        human_bytes(swap_plan.savings_bytes()),
        swap_plan.savings_fraction() * 100.0
    );

    // materialize the plan into a trace and verify the saving is real,
    // not just the planner's estimate
    let transformed = pinpoint::analysis::apply(&report.trace, &swap_plan);
    transformed
        .validate()
        .expect("transformed trace well-formed");
    println!(
        "  applied: measured peak of the transformed trace = {} ({} events, was {})",
        human_bytes(transformed.peak_live_bytes().peak_total_bytes),
        transformed.len(),
        report.trace.len()
    );
    assert_eq!(
        transformed.peak_live_bytes().peak_total_bytes,
        swap_plan.planned_peak_bytes
    );
    Ok(())
}
