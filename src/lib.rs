//! # pinpoint
//!
//! A full-stack reproduction of **"Pinpointing the Memory Behaviors of DNN
//! Training"** (Li et al., ISPASS 2021): an instrumented DNN-training
//! simulator plus the trace-analysis toolkit the paper's figures are built
//! from.
//!
//! The paper instruments PyTorch's GPU memory allocators so that every
//! device memory block is observed through its four behaviors — `malloc`,
//! `free`, `read`, `write` — and characterizes DNN training from the
//! resulting traces. This crate re-creates that whole measurement stack in
//! Rust, from the allocator up:
//!
//! | layer | crate | re-export |
//! |---|---|---|
//! | shapes + CPU kernels | `pinpoint-tensor` | [`tensor`] |
//! | simulated GPU (clock, cost model, allocators, Equation 1) | `pinpoint-device` | [`device`] |
//! | memory-behavior traces | `pinpoint-trace` | [`trace`] |
//! | DNN framework (autograd, liveness, executors) | `pinpoint-nn` | [`nn`] |
//! | model zoo (MLP, AlexNet, VGG, ResNet-18…152, Inception) | `pinpoint-models` | [`models`] |
//! | synthetic datasets | `pinpoint-data` | [`data`] |
//! | ATI / CDF / violin / Gantt / breakdown / outlier / planner | `pinpoint-analysis` | [`analysis`] |
//! | chunked columnar on-disk trace store (`.ptrc`) | `pinpoint-store` | [`store`] |
//! | concurrent trace-query daemon | `pinpoint-serve` | [`serve`] |
//! | deterministic scoped-thread fan-out | `pinpoint-parallel` | [`parallel`] |
//! | self-observability: spans, histograms, metrics registry | `pinpoint-obs` | [`obs`] |
//! | profiler + per-figure regenerators | `pinpoint-core` | [`core`] |
//!
//! # Quickstart
//!
//! ```
//! use pinpoint::core::{profile, ProfileConfig};
//! use pinpoint::analysis::{detect, AtiDataset};
//!
//! // trace 5 iterations of the paper's Fig. 1 MLP
//! let report = profile(&ProfileConfig::mlp_case_study(5))?;
//! report.trace.validate().expect("well-formed");
//!
//! // observation 1: training shows obvious iterative memory patterns
//! assert!(detect(&report.trace).periodic);
//!
//! // observation 2: most access-time intervals are tiny
//! let atis = AtiDataset::from_trace(&report.trace);
//! assert!(atis.fraction_at_or_below(1_000_000) > 0.9);
//! # Ok::<(), pinpoint::core::ProfileError>(())
//! ```

#![warn(missing_docs)]

/// Trace analysis: ATIs, CDF/violin, Gantt, breakdowns, outliers, the swap
/// planner (re-export of `pinpoint-analysis`).
pub mod analysis {
    pub use pinpoint_analysis::*;
}

/// The profiler and per-figure regenerators (re-export of `pinpoint-core`).
pub mod core {
    pub use pinpoint_core::*;
}

/// Synthetic dataset specs and generators (re-export of `pinpoint-data`).
pub mod data {
    pub use pinpoint_data::*;
}

/// The simulated GPU substrate (re-export of `pinpoint-device`).
pub mod device {
    pub use pinpoint_device::*;
}

/// The model zoo (re-export of `pinpoint-models`).
pub mod models {
    pub use pinpoint_models::*;
}

/// Deterministic scoped-thread fan-out (re-export of `pinpoint-parallel`).
pub mod parallel {
    pub use pinpoint_parallel::*;
}

/// The concurrent trace-query daemon (re-export of `pinpoint-serve`).
pub mod serve {
    pub use pinpoint_serve::*;
}

/// The chunked columnar on-disk trace store (re-export of
/// `pinpoint-store`).
pub mod store {
    pub use pinpoint_store::*;
}

/// Self-observability: hierarchical timed spans, log2-bucketed
/// histograms, and the named-metric registry (re-export of
/// `pinpoint-obs`).
pub mod obs {
    pub use pinpoint_obs::*;
}

/// The DNN training framework (re-export of `pinpoint-nn`).
pub mod nn {
    pub use pinpoint_nn::*;
}

/// Shape machinery and CPU kernels (re-export of `pinpoint-tensor`).
pub mod tensor {
    pub use pinpoint_tensor::*;
}

/// Memory-behavior traces (re-export of `pinpoint-trace`).
pub mod trace {
    pub use pinpoint_trace::*;
}
