//! Property-based tests of the device allocators: for arbitrary
//! malloc/free workloads, invariants must hold for every policy.

use pinpoint::device::alloc::{
    AllocError, BestFitAllocator, BumpAllocator, CachingAllocator, DeviceAllocator,
};
use pinpoint::trace::BlockId;
use proptest::prelude::*;

/// A randomized workload step.
#[derive(Debug, Clone)]
enum Step {
    Malloc(usize),
    /// Frees the k-th oldest live block (index modulo live count).
    Free(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (1usize..40_000_000).prop_map(Step::Malloc),
        2 => (0usize..64).prop_map(Step::Free),
    ]
}

/// Runs a workload against an allocator, checking universal invariants.
fn run_workload(alloc: &mut dyn DeviceAllocator, steps: &[Step]) {
    let mut live: Vec<BlockId> = Vec::new();
    for step in steps {
        match step {
            Step::Malloc(size) => match alloc.malloc(*size) {
                Ok(block) => {
                    assert!(block.size >= *size, "rounding never shrinks");
                    assert_eq!(block.requested, *size);
                    assert!(
                        block.offset + block.size <= alloc.capacity(),
                        "block exceeds capacity"
                    );
                    live.push(block.id);
                }
                Err(AllocError::OutOfMemory { .. }) => {} // legal under pressure
                Err(e) => panic!("unexpected error: {e}"),
            },
            Step::Free(k) => {
                if !live.is_empty() {
                    let id = live.remove(k % live.len());
                    alloc.free(id).expect("freeing a live block succeeds");
                }
            }
        }
        // live blocks never overlap
        let blocks = alloc.live_blocks();
        for w in blocks.windows(2) {
            assert!(
                w[0].offset + w[0].size <= w[1].offset,
                "overlap: {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        // stats consistency
        let stats = alloc.stats();
        let live_bytes: usize = blocks.iter().map(|b| b.size).sum();
        assert_eq!(stats.allocated_bytes, live_bytes);
        assert!(stats.peak_allocated_bytes >= stats.allocated_bytes);
        assert!(stats.reserved_bytes <= alloc.capacity());
    }
    // drain: every allocator must release everything cleanly
    for id in live {
        alloc.free(id).expect("drain");
    }
    assert_eq!(alloc.stats().allocated_bytes, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn caching_allocator_invariants(steps in prop::collection::vec(step_strategy(), 1..120)) {
        let mut a = CachingAllocator::new(1 << 30);
        run_workload(&mut a, &steps);
        a.debug_check_invariants().expect("internal invariants");
    }

    #[test]
    fn best_fit_allocator_invariants(steps in prop::collection::vec(step_strategy(), 1..120)) {
        let mut a = BestFitAllocator::new(1 << 30);
        run_workload(&mut a, &steps);
    }

    #[test]
    fn bump_allocator_invariants(steps in prop::collection::vec(step_strategy(), 1..120)) {
        let mut a = BumpAllocator::new(1 << 30);
        run_workload(&mut a, &steps);
    }

    #[test]
    fn caching_reuse_is_offset_stable(sizes in prop::collection::vec(1usize..8_000_000, 1..12)) {
        // whatever the size mix, a warmed cache serves repeating
        // iterations at identical offsets — the Fig. 2 property
        let mut a = CachingAllocator::new(4 << 30);
        let warm: Vec<_> = sizes.iter().map(|&s| a.malloc(s).unwrap()).collect();
        let warm_offsets: Vec<_> = warm.iter().map(|b| b.offset).collect();
        for b in warm { a.free(b.id).unwrap(); }
        for _ in 0..3 {
            let round: Vec<_> = sizes.iter().map(|&s| a.malloc(s).unwrap()).collect();
            let offsets: Vec<_> = round.iter().map(|b| b.offset).collect();
            prop_assert_eq!(&offsets, &warm_offsets);
            for b in round { a.free(b.id).unwrap(); }
        }
    }

    #[test]
    fn round_up_is_monotone_and_idempotent(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        use pinpoint::device::alloc::round_up;
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(round_up(lo) <= round_up(hi));
        prop_assert_eq!(round_up(round_up(a)), round_up(a));
        prop_assert!(round_up(a) >= a);
    }
}
