//! Property-based tests of the device allocators: for arbitrary
//! malloc/free workloads, invariants must hold for every policy.
//!
//! Randomized cases are driven by the in-repo seeded PRNG so the suite is
//! deterministic and needs no external property-testing framework.

use pinpoint::device::alloc::{
    AllocError, BestFitAllocator, BumpAllocator, CachingAllocator, DeviceAllocator,
};
use pinpoint::tensor::rng::Rng64;
use pinpoint::trace::BlockId;

const CASES: usize = 64;

/// A randomized workload step.
#[derive(Debug, Clone)]
enum Step {
    Malloc(usize),
    /// Frees the k-th oldest live block (index modulo live count).
    Free(usize),
}

/// 3:2 weighted mix of mallocs and frees, matching the old strategy.
fn random_steps(rng: &mut Rng64) -> Vec<Step> {
    let len = rng.gen_range_usize(1, 120);
    (0..len)
        .map(|_| {
            if rng.gen_below(5) < 3 {
                Step::Malloc(rng.gen_range_usize(1, 40_000_000))
            } else {
                Step::Free(rng.gen_below(64) as usize)
            }
        })
        .collect()
}

/// Runs a workload against an allocator, checking universal invariants.
fn run_workload(alloc: &mut dyn DeviceAllocator, steps: &[Step]) {
    let mut live: Vec<BlockId> = Vec::new();
    for step in steps {
        match step {
            Step::Malloc(size) => match alloc.malloc(*size) {
                Ok(block) => {
                    assert!(block.size >= *size, "rounding never shrinks");
                    assert_eq!(block.requested, *size);
                    assert!(
                        block.offset + block.size <= alloc.capacity(),
                        "block exceeds capacity"
                    );
                    live.push(block.id);
                }
                Err(AllocError::OutOfMemory { .. }) => {} // legal under pressure
                Err(e) => panic!("unexpected error: {e}"),
            },
            Step::Free(k) => {
                if !live.is_empty() {
                    let id = live.remove(k % live.len());
                    alloc.free(id).expect("freeing a live block succeeds");
                }
            }
        }
        // live blocks never overlap
        let blocks = alloc.live_blocks();
        for w in blocks.windows(2) {
            assert!(
                w[0].offset + w[0].size <= w[1].offset,
                "overlap: {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        // stats consistency
        let stats = alloc.stats();
        let live_bytes: usize = blocks.iter().map(|b| b.size).sum();
        assert_eq!(stats.allocated_bytes, live_bytes);
        assert!(stats.peak_allocated_bytes >= stats.allocated_bytes);
        assert!(stats.reserved_bytes <= alloc.capacity());
    }
    // drain: every allocator must release everything cleanly
    for id in live {
        alloc.free(id).expect("drain");
    }
    assert_eq!(alloc.stats().allocated_bytes, 0);
}

#[test]
fn caching_allocator_invariants() {
    let mut rng = Rng64::seed_from_u64(0xA11);
    for _ in 0..CASES {
        let steps = random_steps(&mut rng);
        let mut a = CachingAllocator::new(1 << 30);
        run_workload(&mut a, &steps);
        a.debug_check_invariants().expect("internal invariants");
    }
}

#[test]
fn best_fit_allocator_invariants() {
    let mut rng = Rng64::seed_from_u64(0xA12);
    for _ in 0..CASES {
        let steps = random_steps(&mut rng);
        let mut a = BestFitAllocator::new(1 << 30);
        run_workload(&mut a, &steps);
    }
}

#[test]
fn bump_allocator_invariants() {
    let mut rng = Rng64::seed_from_u64(0xA13);
    for _ in 0..CASES {
        let steps = random_steps(&mut rng);
        let mut a = BumpAllocator::new(1 << 30);
        run_workload(&mut a, &steps);
    }
}

#[test]
fn caching_reuse_is_offset_stable() {
    let mut rng = Rng64::seed_from_u64(0xA14);
    for _ in 0..CASES {
        // whatever the size mix, a warmed cache serves repeating
        // iterations at identical offsets — the Fig. 2 property
        let n = rng.gen_range_usize(1, 12);
        let sizes: Vec<usize> = (0..n).map(|_| rng.gen_range_usize(1, 8_000_000)).collect();
        let mut a = CachingAllocator::new(4 << 30);
        let warm: Vec<_> = sizes.iter().map(|&s| a.malloc(s).unwrap()).collect();
        let warm_offsets: Vec<_> = warm.iter().map(|b| b.offset).collect();
        for b in warm {
            a.free(b.id).unwrap();
        }
        for _ in 0..3 {
            let round: Vec<_> = sizes.iter().map(|&s| a.malloc(s).unwrap()).collect();
            let offsets: Vec<_> = round.iter().map(|b| b.offset).collect();
            assert_eq!(&offsets, &warm_offsets);
            for b in round {
                a.free(b.id).unwrap();
            }
        }
    }
}

#[test]
fn round_up_is_monotone_and_idempotent() {
    use pinpoint::device::alloc::round_up;
    let mut rng = Rng64::seed_from_u64(0xA15);
    for _ in 0..CASES {
        let a = rng.gen_below(1_000_000) as usize;
        let b = rng.gen_below(1_000_000) as usize;
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(round_up(lo) <= round_up(hi));
        assert_eq!(round_up(round_up(a)), round_up(a));
        assert!(round_up(a) >= a);
    }
}
