//! Property-based tests of the analysis toolkit over arbitrary inputs and
//! over synthetic-but-well-formed traces.
//!
//! Randomized cases are driven by the in-repo seeded PRNG so the suite is
//! deterministic and needs no external property-testing framework.

use pinpoint::analysis::{
    occupancy_timeline, plan, violin, AtiDataset, BreakdownRow, EmpiricalCdf,
};
use pinpoint::device::TransferModel;
use pinpoint::tensor::rng::Rng64;
use pinpoint::trace::{BlockId, EventKind, MemoryKind, Trace};

const CASES: usize = 64;

/// Builds a well-formed trace from block descriptors:
/// `(start, lifetime, size, access_count)`.
fn trace_from_blocks(blocks: &[(u64, u64, usize, usize)]) -> Trace {
    let mut events = Vec::new();
    for (i, &(start, lifetime, size, accesses)) in blocks.iter().enumerate() {
        let b = BlockId(i as u64);
        let size = size.max(1);
        let offset = i << 20;
        events.push((start, EventKind::Malloc, b, size, offset));
        for k in 0..accesses {
            let t = start + (k as u64 + 1) * lifetime.max(2) / (accesses as u64 + 2);
            events.push((t, EventKind::Read, b, size, offset));
        }
        events.push((start + lifetime.max(2), EventKind::Free, b, size, offset));
    }
    events.sort_by_key(|e| e.0);
    let mut t = Trace::new();
    for (time, kind, b, size, offset) in events {
        t.record(time, kind, b, size, offset, MemoryKind::Activation, None);
    }
    t
}

fn random_blocks(rng: &mut Rng64) -> Vec<(u64, u64, usize, usize)> {
    let n = rng.gen_range_usize(1, 20);
    (0..n)
        .map(|_| {
            (
                rng.gen_below(1_000_000),
                2 + rng.gen_below(10_000_000 - 2),
                1 + rng.gen_below(100_000_000 - 1) as usize,
                rng.gen_below(8) as usize,
            )
        })
        .collect()
}

#[test]
fn generated_traces_validate() {
    let mut rng = Rng64::seed_from_u64(0xAB1);
    for _ in 0..CASES {
        let t = trace_from_blocks(&random_blocks(&mut rng));
        assert!(t.validate().is_ok(), "{:?}", t.validate());
    }
}

#[test]
fn cdf_is_monotone_and_bounded() {
    let mut rng = Rng64::seed_from_u64(0xAB2);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 200);
        let samples: Vec<u64> = (0..n).map(|_| rng.gen_below(10_000_000)).collect();
        let cdf = EmpiricalCdf::new(samples.clone());
        let pts = cdf.points();
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        // percentiles bracket the data
        let (min, max) = cdf.range().unwrap();
        assert!(cdf.percentile(0.0) == min);
        assert!(cdf.percentile(1.0) == max);
        for p in [0.1, 0.5, 0.9] {
            let v = cdf.percentile(p);
            assert!(v >= min && v <= max);
        }
    }
}

#[test]
fn ati_count_matches_access_arithmetic() {
    let mut rng = Rng64::seed_from_u64(0xAB3);
    for _ in 0..CASES {
        let blocks = random_blocks(&mut rng);
        let t = trace_from_blocks(&blocks);
        let atis = AtiDataset::from_trace(&t);
        let expected: usize = blocks.iter().map(|&(_, _, _, a)| a.saturating_sub(1)).sum();
        assert_eq!(atis.len(), expected);
        // fraction_at_or_below is a CDF: monotone in the threshold
        let f1 = atis.fraction_at_or_below(1_000);
        let f2 = atis.fraction_at_or_below(1_000_000);
        assert!(f1 <= f2);
        assert!((0.0..=1.0).contains(&f2));
    }
}

#[test]
fn occupancy_never_negative_and_ends_at_zero() {
    let mut rng = Rng64::seed_from_u64(0xAB4);
    for _ in 0..CASES {
        let t = trace_from_blocks(&random_blocks(&mut rng));
        let tl = occupancy_timeline(&t);
        assert!(!tl.is_empty());
        assert_eq!(tl.last().unwrap().live_bytes, 0, "all blocks freed");
        let peak = tl.iter().map(|p| p.live_bytes).max().unwrap();
        assert_eq!(peak, t.peak_live_bytes().peak_total_bytes);
    }
}

#[test]
fn breakdown_fractions_sum_to_one() {
    let mut rng = Rng64::seed_from_u64(0xAB5);
    for _ in 0..CASES {
        let t = trace_from_blocks(&random_blocks(&mut rng));
        let row = BreakdownRow::from_trace("prop", &t);
        let (i, p, m) = row.fractions();
        if row.peak_bytes > 0 {
            assert!(((i + p + m) - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn planner_never_increases_peak_and_respects_eq1() {
    let mut rng = Rng64::seed_from_u64(0xAB6);
    for _ in 0..CASES {
        let t = trace_from_blocks(&random_blocks(&mut rng));
        let tm = TransferModel::titan_x_pascal_pinned();
        let p = plan(&t, &tm, 1_000);
        assert!(p.planned_peak_bytes <= p.baseline_peak_bytes);
        for d in &p.decisions {
            let round_trip = tm.d2h_time_ns(d.size) + tm.h2d_time_ns(d.size);
            assert!(round_trip <= d.interval_ns());
        }
    }
}

#[test]
fn violin_quartiles_are_ordered() {
    let mut rng = Rng64::seed_from_u64(0xAB7);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 200);
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e9).collect();
        let v = violin(&samples, 32).unwrap();
        assert!(v.min <= v.q1 && v.q1 <= v.median);
        assert!(v.median <= v.q3 && v.q3 <= v.max);
        assert!(v.density.iter().all(|(_, d)| d.is_finite() && *d >= 0.0));
    }
}
