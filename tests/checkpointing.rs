//! Integration tests for activation checkpointing: the transformed program
//! must train identically (same losses) while measurably cutting the peak
//! footprint in the trace.

use pinpoint::device::{DeviceConfig, SimDevice};
use pinpoint::nn::checkpoint::apply_checkpointing;
use pinpoint::nn::exec::{BatchData, ExecMode, Executor};
use pinpoint::nn::layers::Linear;
use pinpoint::nn::Graph;
use pinpoint::nn::{backward, GraphBuilder, InitSpec, Optimizer, Program, TensorId};

fn deep_mlp(depth: usize, width: usize, batch: usize) -> (Graph, Vec<TensorId>, TensorId) {
    let mut b = GraphBuilder::new();
    let x = b.input("x", [batch, width]);
    let y = b.labels("y", batch);
    let mut h = x;
    for i in 0..depth {
        let fc = Linear::new(&mut b, &format!("fc{i}"), width, width, true);
        h = fc.forward(&mut b, h);
        h = b.relu(h, &format!("relu{i}"));
    }
    let head = b.param("head", [width, 2], InitSpec::Uniform { bound: 0.2 });
    let logits = b.matmul(h, head, false, false, "head");
    let (loss, _) = b.softmax_cross_entropy(logits, y, "loss");
    let grads = backward(&mut b, loss);
    Optimizer::Sgd { lr: 0.2 }.emit_step(&mut b, &grads);
    (b.finish(), vec![x, y], loss)
}

fn batch(batch: usize, width: usize, iter: u64) -> BatchData {
    let input: Vec<f32> = (0..batch * width)
        .map(|i| ((i as f32 * 0.13) + iter as f32).sin())
        .collect();
    let labels: Vec<f32> = (0..batch).map(|i| (i % 2) as f32).collect();
    BatchData { input, labels }
}

fn run_concrete(program: Program, iters: u64, b: usize, w: usize) -> (Vec<f32>, u64) {
    let device = SimDevice::new(DeviceConfig::deterministic());
    let mut exec = Executor::new(program, device, ExecMode::Concrete).unwrap();
    for i in 0..iters {
        exec.run_iteration(Some(&batch(b, w, i))).unwrap();
    }
    let losses = exec.loss_history().to_vec();
    let device = exec.into_device();
    device.trace().validate().unwrap();
    let peak = device.trace().peak_live_bytes().peak_total_bytes;
    (losses, peak)
}

#[test]
fn checkpointing_preserves_training_losses_exactly() {
    let (depth, width, bs) = (10usize, 32usize, 256usize);
    let (g, inputs, loss) = deep_mlp(depth, width, bs);
    let baseline = Program::compile(g.clone(), inputs.clone(), loss);
    let ckpt_graph = apply_checkpointing(&g, loss, 4);
    let ckpt = Program::compile(ckpt_graph, inputs, loss);
    let (l0, peak0) = run_concrete(baseline, 5, bs, width);
    let (l1, peak1) = run_concrete(ckpt, 5, bs, width);
    assert_eq!(l0.len(), l1.len());
    for (a, b) in l0.iter().zip(&l1) {
        assert!(
            (a - b).abs() < 1e-6,
            "recomputation must not change training: {a} vs {b}"
        );
    }
    assert!(
        peak1 < peak0,
        "checkpointing must cut the peak: {peak0} -> {peak1}"
    );
}

#[test]
fn sparser_checkpoints_save_more_but_compute_more() {
    let (depth, width, bs) = (16usize, 64usize, 32usize);
    let (g, inputs, loss) = deep_mlp(depth, width, bs);
    let mut prev_peak = u64::MAX;
    let mut prev_flops = 0u64;
    for keep_every in [1usize, 2, 6] {
        let tg = apply_checkpointing(&g, loss, keep_every);
        let program = Program::compile(tg, inputs.clone(), loss);
        let flops = program.summary().total_flops;
        let device = SimDevice::new(DeviceConfig::deterministic());
        let mut exec = Executor::new(program, device, ExecMode::Symbolic).unwrap();
        exec.run_iterations(2).unwrap();
        let device = exec.into_device();
        device.trace().validate().unwrap();
        let peak = device.trace().peak_live_bytes().peak_total_bytes;
        assert!(
            peak <= prev_peak,
            "sparser checkpoints must not grow the peak: {prev_peak} -> {peak}"
        );
        assert!(
            flops >= prev_flops,
            "recomputation must not shrink FLOPs: {prev_flops} -> {flops}"
        );
        prev_peak = peak;
        prev_flops = flops;
    }
    assert!(prev_peak < u64::MAX);
}

#[test]
fn checkpointed_trace_stays_periodic() {
    let (g, inputs, loss) = deep_mlp(8, 32, 8);
    let tg = apply_checkpointing(&g, loss, 3);
    let program = Program::compile(tg, inputs, loss);
    let device = SimDevice::new(DeviceConfig::deterministic());
    let mut exec = Executor::new(program, device, ExecMode::Symbolic).unwrap();
    exec.run_iterations(4).unwrap();
    let device = exec.into_device();
    let report = pinpoint::analysis::detect(device.trace());
    assert!(report.periodic, "{report:?}");
}
