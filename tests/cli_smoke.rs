//! Smoke tests for the two CLI binaries, driven through `cargo run`-built
//! artifacts via the library API (write a trace, then inspect it the way
//! the CLI does).

use pinpoint::core::{profile, ProfileConfig};
use pinpoint::trace::export::{read_json, write_json};
use std::fs::File;
use std::process::Command;

fn trace_file() -> std::path::PathBuf {
    let report = profile(&ProfileConfig::mlp_case_study(5)).unwrap();
    let path = std::env::temp_dir().join("pinpoint_cli_smoke_trace.json");
    write_json(&report.trace, File::create(&path).unwrap()).unwrap();
    path
}

fn bin(name: &str) -> std::path::PathBuf {
    // integration tests run from the workspace root; binaries are built
    // into the same profile directory as the test executable
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop();
    p.join(name)
}

#[test]
fn trace_tool_subcommands_run() {
    let trace = trace_file();
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    for sub in [
        "summary",
        "ati",
        "breakdown",
        "gantt",
        "ops",
        "plan",
        "outliers",
    ] {
        let out = Command::new(&tool)
            .arg(sub)
            .arg(&trace)
            .output()
            .expect("spawn trace tool");
        assert!(out.status.success(), "{sub} failed: {out:?}");
        assert!(!out.stdout.is_empty(), "{sub} printed nothing");
    }
    // compare works against itself
    let out = Command::new(&tool)
        .arg("compare")
        .arg(&trace)
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("+0.0%"));
    // bad inputs fail politely
    let out = Command::new(&tool)
        .arg("summary")
        .arg("/no/such/file")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = Command::new(&tool)
        .arg("nonsense")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn trace_tool_store_outputs_match_json_outputs() {
    let trace = trace_file();
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    let store = std::env::temp_dir().join("pinpoint_cli_smoke_trace.ptrc");
    let out = Command::new(&tool)
        .args(["convert"])
        .arg(&trace)
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "convert failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("smaller"));

    // every analysis subcommand reads the store directly and prints the
    // same bytes as the JSON path, at one worker thread and several
    for sub in ["summary", "ati", "breakdown", "outliers", "gantt", "ops"] {
        let from_json = Command::new(&tool).arg(sub).arg(&trace).output().unwrap();
        assert!(from_json.status.success(), "{sub} on JSON failed");
        for threads in ["1", "4"] {
            let from_store = Command::new(&tool)
                .arg(sub)
                .arg(&store)
                .args(["--threads", threads])
                .output()
                .unwrap();
            assert!(from_store.status.success(), "{sub} on store failed");
            assert_eq!(
                String::from_utf8_lossy(&from_json.stdout),
                String::from_utf8_lossy(&from_store.stdout),
                "{sub} diverges between formats at --threads {threads}"
            );
        }
    }

    // the fused `report` subcommand: all five passes over one scan, with
    // the scan accounting printed; byte-identical across formats and
    // thread counts (both sides chunk at the same default granularity)
    let from_json = Command::new(&tool)
        .args(["report"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(from_json.status.success(), "report on JSON failed");
    let text = String::from_utf8_lossy(&from_json.stdout);
    assert!(text.contains("in 1 pass"), "{text}");
    assert!(text.contains("peak footprint"), "{text}");
    for threads in ["1", "4"] {
        let from_store = Command::new(&tool)
            .args(["report"])
            .arg(&store)
            .args(["--threads", threads])
            .output()
            .unwrap();
        assert!(from_store.status.success(), "report on store failed");
        assert_eq!(
            String::from_utf8_lossy(&from_json.stdout),
            String::from_utf8_lossy(&from_store.stdout),
            "report diverges between formats at --threads {threads}"
        );
    }

    let out = Command::new(&tool)
        .arg("info")
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("chunks") && text.contains("smaller"),
        "{text}"
    );

    let out = Command::new(&tool)
        .arg("query")
        .arg(&store)
        .args(["--kind", "malloc", "--min-size-bytes", "1000", "--max", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("events match"));

    // converting back to JSON reproduces the original trace exactly
    let json_back = std::env::temp_dir().join("pinpoint_cli_smoke_back.json");
    let out = Command::new(&tool)
        .args(["convert"])
        .arg(&store)
        .arg(&json_back)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let a = read_json(File::open(&trace).unwrap()).unwrap();
    let b = read_json(File::open(&json_back).unwrap()).unwrap();
    assert_eq!(a, b, "JSON -> .ptrc -> JSON is lossless");

    // query on a JSON file fails politely rather than misparsing
    let out = Command::new(&tool)
        .arg("query")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn scrub_and_verify_round_trip_a_damaged_store() {
    let trace = trace_file();
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    let store = std::env::temp_dir().join("pinpoint_cli_scrub.ptrc");
    let out = Command::new(&tool)
        .args(["convert"])
        .arg(&trace)
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "convert failed: {out:?}");

    // a pristine store verifies clean, exit code zero
    let out = Command::new(&tool)
        .args(["info"])
        .arg(&store)
        .arg("--verify")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("intact"));

    // flip one payload byte: --verify must fail with a pinpointed chunk
    let mut bytes = std::fs::read(&store).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x10;
    let damaged = std::env::temp_dir().join("pinpoint_cli_scrub_damaged.ptrc");
    std::fs::write(&damaged, &bytes).unwrap();
    let out = Command::new(&tool)
        .args(["info"])
        .arg(&damaged)
        .arg("--verify")
        .output()
        .unwrap();
    assert!(!out.status.success(), "damaged store must fail --verify");
    assert!(String::from_utf8_lossy(&out.stdout).contains("CORRUPT"));

    // scrub rebuilds a store that verifies clean again
    let scrubbed = std::env::temp_dir().join("pinpoint_cli_scrubbed.ptrc");
    let out = Command::new(&tool)
        .args(["scrub"])
        .arg(&damaged)
        .arg(&scrubbed)
        .output()
        .unwrap();
    assert!(out.status.success(), "scrub failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("dropped"));
    let out = Command::new(&tool)
        .args(["info"])
        .arg(&scrubbed)
        .arg("--verify")
        .output()
        .unwrap();
    assert!(out.status.success(), "scrubbed store must verify: {out:?}");

    // scrubbing a pristine store is a lossless pass-through
    let copied = std::env::temp_dir().join("pinpoint_cli_scrub_copy.ptrc");
    let out = Command::new(&tool)
        .args(["scrub"])
        .arg(&store)
        .arg(&copied)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 chunks / 0 events dropped"));
    let a = Command::new(&tool)
        .arg("summary")
        .arg(&store)
        .output()
        .unwrap();
    let b = Command::new(&tool)
        .arg("summary")
        .arg(&copied)
        .output()
        .unwrap();
    assert_eq!(a.stdout, b.stdout, "scrub of a clean store changes nothing");

    for p in [&store, &damaged, &scrubbed, &copied] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn convert_writes_v3_and_old_stores_stay_fully_readable() {
    let trace = trace_file();
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    // convert emits format v3 (checksummed, adaptive encodings) by default
    let store = std::env::temp_dir().join("pinpoint_cli_v3_default.ptrc");
    let out = Command::new(&tool)
        .args(["convert"])
        .arg(&trace)
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let head = std::fs::read(&store).unwrap();
    assert_eq!(&head[..4], b"PTRC");
    assert_eq!(head[4], 3, "convert must write format v3 by default");

    // legacy v1 and v2 stores round-trip through the tool byte-identically
    // at the event level: same JSON out, same analysis output
    let original = read_json(File::open(&trace).unwrap()).unwrap();
    let v1 = std::env::temp_dir().join("pinpoint_cli_v1_legacy.ptrc");
    {
        let mut bytes = Vec::new();
        pinpoint::store::write_store_chunked_v1(&original, &mut bytes, 4096).unwrap();
        assert_eq!(bytes[4], 1);
        std::fs::write(&v1, bytes).unwrap();
    }
    let v2 = std::env::temp_dir().join("pinpoint_cli_v2_legacy.ptrc");
    {
        let mut bytes = Vec::new();
        pinpoint::store::write_store_chunked_v2(&original, &mut bytes, 4096).unwrap();
        assert_eq!(bytes[4], 2);
        std::fs::write(&v2, bytes).unwrap();
    }
    let back = std::env::temp_dir().join("pinpoint_cli_v1_back.json");
    let out = Command::new(&tool)
        .args(["convert"])
        .arg(&v1)
        .arg(&back)
        .output()
        .unwrap();
    assert!(out.status.success(), "v1 convert failed: {out:?}");
    let decoded = read_json(File::open(&back).unwrap()).unwrap();
    assert_eq!(decoded, original, "v1 -> JSON loses information");
    let a = Command::new(&tool)
        .arg("summary")
        .arg(&v1)
        .output()
        .unwrap();
    let b = Command::new(&tool)
        .arg("summary")
        .arg(&store)
        .output()
        .unwrap();
    let c = Command::new(&tool)
        .arg("summary")
        .arg(&v2)
        .output()
        .unwrap();
    assert!(a.status.success() && b.status.success() && c.status.success());
    assert_eq!(a.stdout, b.stdout, "v1 and v3 analyses diverge");
    assert_eq!(c.stdout, b.stdout, "v2 and v3 analyses diverge");

    // ptrc -> ptrc convert upgrades an old store to v3 in place, with no
    // event-level change (same JSON back out)
    let upgraded = std::env::temp_dir().join("pinpoint_cli_v2_upgraded.ptrc");
    let out = Command::new(&tool)
        .args(["convert"])
        .arg(&v2)
        .arg(&upgraded)
        .output()
        .unwrap();
    assert!(out.status.success(), "v2 -> v3 upgrade failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(v2)") && text.contains("(v3)"), "{text}");
    let head = std::fs::read(&upgraded).unwrap();
    assert_eq!(head[4], 3, "upgrade must write format v3");
    assert!(
        head.len() < std::fs::metadata(&v2).unwrap().len() as usize,
        "v3 upgrade should shrink the store"
    );
    let up_back = std::env::temp_dir().join("pinpoint_cli_upgraded_back.json");
    let out = Command::new(&tool)
        .args(["convert"])
        .arg(&upgraded)
        .arg(&up_back)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let decoded = read_json(File::open(&up_back).unwrap()).unwrap();
    assert_eq!(decoded, original, "v2 -> v3 upgrade loses information");

    for p in [&store, &v1, &v2, &back, &upgraded, &up_back] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn figures_cli_runs_quick_figures() {
    let figures = bin("pinpoint-figures");
    if !figures.exists() {
        eprintln!("skipping: {figures:?} not built (run with --workspace)");
        return;
    }
    for fig in ["fig1", "fig2", "fig5"] {
        let out = Command::new(&figures).arg(fig).output().expect("spawn");
        assert!(out.status.success(), "{fig} failed");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("Fig"), "{fig}: {text}");
    }
}

#[test]
fn written_trace_round_trips() {
    let path = trace_file();
    let back = read_json(File::open(&path).unwrap()).unwrap();
    back.validate().unwrap();
    assert!(back.len() > 100);
}

/// `serve` startup failures must be a single `error:` line on stderr and
/// a nonzero exit — never a panic, a hang, or a silent success.
#[test]
fn serve_startup_failures_exit_nonzero_with_one_line_errors() {
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }

    // a catalog path that is not a directory
    let out = Command::new(&tool)
        .args(["serve", "--catalog", "/no/such/catalog"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        err.trim(),
        "error: --catalog /no/such/catalog is not a directory",
        "stderr: {err}"
    );
    assert_eq!(err.trim().lines().count(), 1, "one line, not a backtrace");

    // a port someone else already holds
    let taken = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = taken.local_addr().unwrap();
    let dir = std::env::temp_dir().join(format!("pinpoint_cli_serve_bind_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(&tool)
        .args(["serve", "--catalog"])
        .arg(&dir)
        .args(["--addr", &addr.to_string()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "bind conflict must fail: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error: cannot serve:"), "stderr: {err}");
    assert_eq!(err.trim().lines().count(), 1, "one line, not a backtrace");
    drop(taken);
    let _ = std::fs::remove_dir_all(&dir);
}
