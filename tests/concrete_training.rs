//! Concrete-execution integration: the framework really trains (loss
//! drops, accuracy-ish behavior) while being traced, and concrete and
//! symbolic modes agree on memory behavior.

use pinpoint::core::{profile, ProfileConfig};
use pinpoint::data::{DatasetSpec, TwoBlobs};
use pinpoint::device::{DeviceConfig, SimDevice};
use pinpoint::models::{build_training_program, Architecture, ImageDims, MlpConfig, ResNetDepth};
use pinpoint::nn::exec::{BatchData, ExecMode, Executor};
use pinpoint::nn::Optimizer;

fn small_mlp() -> Architecture {
    Architecture::Mlp(MlpConfig {
        in_features: 2,
        hidden: 64,
        classes: 2,
    })
}

#[test]
fn mlp_reaches_low_loss_on_blobs() {
    let mut cfg = ProfileConfig::mlp_case_study(80);
    cfg.mode = ExecMode::Concrete;
    cfg.arch = small_mlp();
    let report = profile(&cfg).unwrap();
    let last = *report.loss_history.last().unwrap();
    assert!(
        last < 0.2,
        "well-separated blobs should train to <0.2, got {last}"
    );
    // loss is broadly decreasing: last quarter below first quarter
    let n = report.loss_history.len();
    let first: f32 = report.loss_history[..n / 4].iter().sum::<f32>() / (n / 4) as f32;
    let tail: f32 = report.loss_history[3 * n / 4..].iter().sum::<f32>() / (n - 3 * n / 4) as f32;
    assert!(tail < first * 0.5, "{first} -> {tail}");
}

#[test]
fn trained_mlp_classifies_held_out_blobs() {
    // train via the executor API, then check decision quality through the
    // loss on a fresh batch (the probs of a fresh forward pass are not
    // directly exposed, so use loss < ln(2) as the accuracy proxy)
    let arch = small_mlp();
    let program =
        build_training_program(&arch, 32, ImageDims::cifar(), 2, Optimizer::Sgd { lr: 0.5 });
    let device = SimDevice::new(DeviceConfig::deterministic());
    let mut exec = Executor::new(program, device, ExecMode::Concrete).unwrap();
    let mut gen = TwoBlobs::new(77);
    for _ in 0..60 {
        let b = gen.next_batch(32);
        exec.run_iteration(Some(&BatchData {
            input: b.input,
            labels: b.labels,
        }))
        .unwrap();
    }
    // a fresh, unseen batch
    let b = gen.next_batch(32);
    let stats = exec
        .run_iteration(Some(&BatchData {
            input: b.input,
            labels: b.labels,
        }))
        .unwrap();
    let loss = stats.loss.unwrap();
    assert!(
        loss < 0.35,
        "held-out loss should beat chance (ln 2 ≈ 0.69): {loss}"
    );
}

#[test]
fn concrete_lenet_runs_with_real_conv_math() {
    let mut cfg = ProfileConfig::breakdown_sweep(Architecture::LeNet5, DatasetSpec::mnist(), 4);
    cfg.mode = ExecMode::Concrete;
    cfg.iterations = 3;
    let report = profile(&cfg).unwrap();
    assert_eq!(report.loss_history.len(), 3);
    for l in &report.loss_history {
        assert!(l.is_finite(), "loss must stay finite: {l}");
        // 10 classes, random data: loss in the vicinity of ln(10) (the
        // Kaiming init spreads early logits, so allow a generous band)
        assert!((1.0..10.0).contains(l), "loss {l}");
    }
}

#[test]
fn concrete_resnet_block_runs_batchnorm_and_residuals() {
    let mut cfg = ProfileConfig::breakdown_sweep(
        Architecture::ResNet(ResNetDepth::R18),
        DatasetSpec::mnist(),
        2,
    );
    cfg.mode = ExecMode::Concrete;
    cfg.iterations = 2;
    let report = profile(&cfg).unwrap();
    assert_eq!(report.loss_history.len(), 2);
    assert!(report.loss_history.iter().all(|l| l.is_finite()));
}

#[test]
fn adam_trains_the_mlp_too() {
    let arch = small_mlp();
    let program = build_training_program(
        &arch,
        32,
        ImageDims::cifar(),
        2,
        pinpoint::nn::Optimizer::adam(5e-3),
    );
    let device = SimDevice::new(DeviceConfig::deterministic());
    let mut exec = Executor::new(program, device, ExecMode::Concrete).unwrap();
    let mut gen = TwoBlobs::new(5);
    let mut losses = Vec::new();
    for _ in 0..60 {
        let b = gen.next_batch(32);
        let s = exec
            .run_iteration(Some(&BatchData {
                input: b.input,
                labels: b.labels,
            }))
            .unwrap();
        losses.push(s.loss.unwrap());
    }
    assert!(losses.iter().all(|l| l.is_finite()));
    assert!(
        *losses.last().unwrap() < losses[0] * 0.5,
        "Adam should train: {} -> {}",
        losses[0],
        losses.last().unwrap()
    );
    // Adam doubles the persistent state: weights + 2 moment buffers
    let trace = exec.into_device().into_trace();
    let state_bytes: u64 = trace
        .lifetimes()
        .values()
        .filter(|lt| lt.mem_kind == pinpoint::trace::MemoryKind::OptimizerState)
        .map(|lt| lt.size as u64)
        .sum();
    let weight_bytes: u64 = trace
        .lifetimes()
        .values()
        .filter(|lt| lt.mem_kind == pinpoint::trace::MemoryKind::Weight)
        .map(|lt| lt.size as u64)
        .sum();
    assert_eq!(state_bytes, 2 * weight_bytes);
}

#[test]
fn concrete_inception_concat_runs() {
    let mut cfg = ProfileConfig::breakdown_sweep(Architecture::Inception, DatasetSpec::mnist(), 2);
    cfg.mode = ExecMode::Concrete;
    cfg.iterations = 1;
    let report = profile(&cfg).unwrap();
    assert_eq!(report.loss_history.len(), 1);
    assert!(report.loss_history[0].is_finite());
    report.trace.validate().unwrap();
}

#[test]
fn forward_only_profile_uses_far_less_memory() {
    let train = profile(&ProfileConfig::breakdown_sweep(
        Architecture::Vgg16,
        DatasetSpec::cifar100(),
        32,
    ))
    .unwrap();
    let mut fwd_cfg =
        ProfileConfig::breakdown_sweep(Architecture::Vgg16, DatasetSpec::cifar100(), 32);
    fwd_cfg.forward_only = true;
    let fwd = profile(&fwd_cfg).unwrap();
    let train_peak = train.trace.peak_live_bytes().peak_total_bytes;
    let fwd_peak = fwd.trace.peak_live_bytes().peak_total_bytes;
    assert!(
        train_peak > 2 * fwd_peak,
        "training {train_peak} vs forward {fwd_peak}"
    );
    fwd.trace.validate().unwrap();
}

#[test]
fn data_parallel_rank_trains_identically() {
    // simulated replicas hold identical gradients, so DDP's averaged step
    // equals the single-rank step: concrete losses must match exactly
    let mut base = ProfileConfig::mlp_case_study(10);
    base.mode = ExecMode::Concrete;
    base.arch = small_mlp();
    let mut ddp = base.clone();
    ddp.data_parallel = Some(pinpoint::models::DdpSpec::pcie(4));
    let a = profile(&base).unwrap();
    let b = profile(&ddp).unwrap();
    assert_eq!(a.loss_history, b.loss_history);
    // the rank's trace gains the all-reduce kernels but no footprint
    assert!(b.trace.len() > a.trace.len());
    assert_eq!(
        a.trace.peak_live_bytes().peak_total_bytes,
        b.trace.peak_live_bytes().peak_total_bytes
    );
    assert!(b.duration_ns > a.duration_ns, "wire time must show up");
}

#[test]
fn concrete_and_symbolic_memory_behavior_is_identical() {
    let mut sym = ProfileConfig::mlp_case_study(4);
    sym.arch = small_mlp();
    let mut conc = sym.clone();
    conc.mode = ExecMode::Concrete;
    let a = profile(&sym).unwrap();
    let b = profile(&conc).unwrap();
    assert_eq!(a.trace.events(), b.trace.events());
    assert_eq!(a.duration_ns, b.duration_ns);
    assert!(b.loss_history.len() == 4 && a.loss_history.is_empty());
}
