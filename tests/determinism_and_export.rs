//! Determinism and serialization: identical configurations must produce
//! byte-identical traces, and traces must round-trip through the exporters.

use pinpoint::core::{profile, ProfileConfig};
use pinpoint::trace::export::{read_json, write_csv, write_json};

#[test]
fn identical_configs_produce_identical_traces() {
    let a = profile(&ProfileConfig::mlp_case_study(5)).unwrap();
    let b = profile(&ProfileConfig::mlp_case_study(5)).unwrap();
    assert_eq!(a.trace.len(), b.trace.len());
    assert_eq!(a.trace.events(), b.trace.events());
    assert_eq!(a.trace.markers(), b.trace.markers());
    assert_eq!(a.duration_ns, b.duration_ns);
}

#[test]
fn different_seeds_change_nothing_symbolically() {
    // symbolic execution has no data, so the seed only affects concrete
    // values; the memory behavior must be seed-independent
    let mut cfg1 = ProfileConfig::mlp_case_study(3);
    cfg1.seed = 1;
    let mut cfg2 = ProfileConfig::mlp_case_study(3);
    cfg2.seed = 999;
    let a = profile(&cfg1).unwrap();
    let b = profile(&cfg2).unwrap();
    assert_eq!(a.trace.events(), b.trace.events());
}

#[test]
fn json_round_trip_preserves_the_trace() {
    let report = profile(&ProfileConfig::mlp_case_study(2)).unwrap();
    let mut buf = Vec::new();
    write_json(&report.trace, &mut buf).unwrap();
    let back = read_json(&buf[..]).unwrap();
    assert_eq!(back.events(), report.trace.events());
    assert_eq!(back.markers(), report.trace.markers());
    assert_eq!(back.labels(), report.trace.labels());
    back.validate().unwrap();
}

#[test]
fn csv_export_has_one_row_per_event() {
    let report = profile(&ProfileConfig::mlp_case_study(2)).unwrap();
    let mut buf = Vec::new();
    write_csv(&report.trace, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let rows = text.lines().count();
    assert_eq!(rows, report.trace.len() + 1, "header + one row per event");
    assert!(text.starts_with("time_ns,kind,block,size,offset,mem_kind,category,op"));
    // spot-check: the staging transfer appears with its op label
    assert!(text.contains("stage.x"), "{}", &text[..400.min(text.len())]);
}

#[test]
fn fig7_sweep_is_bit_identical_across_thread_counts() {
    // the parallel sweep engine must never change results: the same rows,
    // in the same order, with bit-equal bytes at every worker count
    use pinpoint::core::figures::fig7_resnet;
    pinpoint::core::parallel::set_global_threads(1);
    let base = fig7_resnet(&[32, 128]).unwrap();
    for threads in [2, 4, 8] {
        pinpoint::core::parallel::set_global_threads(threads);
        let rows = fig7_resnet(&[32, 128]).unwrap();
        assert_eq!(rows, base, "fig7 rows diverged at {threads} threads");
    }
    pinpoint::core::parallel::set_global_threads(1);
}

#[test]
fn concrete_profile_is_thread_count_independent() {
    // the mt conv kernels are bit-identical to the sequential ones, so a
    // concrete run must produce the same trace AND the same float losses
    let mut cfg1 = ProfileConfig::mlp_case_study(3);
    cfg1.threads = 1;
    let mut cfg4 = ProfileConfig::mlp_case_study(3);
    cfg4.threads = 4;
    let a = profile(&cfg1).unwrap();
    let b = profile(&cfg4).unwrap();
    assert_eq!(a.trace.events(), b.trace.events());
    assert_eq!(a.trace.markers(), b.trace.markers());
    let la: Vec<u32> = a.loss_history.iter().map(|v| v.to_bits()).collect();
    let lb: Vec<u32> = b.loss_history.iter().map(|v| v.to_bits()).collect();
    assert_eq!(la, lb, "losses must be bit-equal across thread counts");
}

#[test]
fn jitter_seeds_are_stable_across_runs_but_vary_over_time() {
    // the cost model's jitter must not break determinism
    let a = profile(&ProfileConfig::mlp_case_study(4)).unwrap();
    let b = profile(&ProfileConfig::mlp_case_study(4)).unwrap();
    assert_eq!(a.duration_ns, b.duration_ns);
    // but successive iterations genuinely differ in duration (jitter on)
    let marks: Vec<u64> = a.trace.markers().iter().map(|m| m.time_ns).collect();
    let periods: Vec<u64> = marks.windows(2).map(|w| w[1] - w[0]).collect();
    let all_equal = periods.windows(2).all(|w| w[0] == w[1]);
    assert!(!all_equal, "jitter should spread periods: {periods:?}");
}
