//! Property-based tests of the device models: the cost, transfer and
//! Equation-1 helpers must be monotone and consistent for all inputs.

use pinpoint::device::{CostModel, TransferModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kernel_time_is_monotone_in_flops_and_bytes(
        flops in 0u64..10_000_000_000,
        bytes in 0u64..10_000_000_000,
        extra in 1u64..1_000_000_000,
    ) {
        let cm = CostModel::deterministic();
        let base = cm.kernel_time_ns(flops, bytes, 0);
        prop_assert!(cm.kernel_time_ns(flops + extra, bytes, 0) >= base);
        prop_assert!(cm.kernel_time_ns(flops, bytes + extra, 0) >= base);
        prop_assert!(base >= cm.launch_overhead_ns.min(base));
        prop_assert!(base >= 1);
    }

    #[test]
    fn roofline_takes_the_max_of_compute_and_memory(
        flops in 1u64..1_000_000_000,
        bytes in 1u64..1_000_000_000,
    ) {
        let cm = CostModel::deterministic();
        let both = cm.kernel_time_ns(flops, bytes, 0);
        let compute_only = cm.kernel_time_ns(flops, 0, 0);
        let memory_only = cm.kernel_time_ns(0, bytes, 0);
        prop_assert!(both + 1 >= compute_only.max(memory_only));
        // roofline, not sum: both never exceeds compute+memory bodies
        let overhead = cm.launch_overhead_ns;
        prop_assert!(
            both <= compute_only + memory_only - overhead + 1,
            "{both} vs {compute_only}+{memory_only}"
        );
    }

    #[test]
    fn transfer_times_are_monotone_and_additive_in_latency(bytes in 0usize..1_000_000_000) {
        let tm = TransferModel::titan_x_pascal_pinned();
        prop_assert!(tm.h2d_time_ns(bytes) >= tm.latency_ns);
        prop_assert!(tm.d2h_time_ns(bytes) >= tm.latency_ns);
        prop_assert!(tm.h2d_time_ns(bytes + 1024) >= tm.h2d_time_ns(bytes));
        prop_assert!(tm.d2h_time_ns(bytes + 1024) >= tm.d2h_time_ns(bytes));
    }

    #[test]
    fn equation_1_bound_is_linear_in_the_interval(ati in 1u64..10_000_000_000) {
        let tm = TransferModel::titan_x_pascal_pinned();
        let s1 = tm.max_swap_bytes(ati);
        let s2 = tm.max_swap_bytes(2 * ati);
        prop_assert!((s2 / s1 - 2.0).abs() < 1e-9, "{s1} vs {s2}");
        // refined bound never exceeds the plain bound
        prop_assert!(tm.max_swap_bytes_with_latency(ati) <= s1);
    }

    #[test]
    fn swappable_is_monotone(size in 1usize..2_000_000_000, ati in 1u64..2_000_000_000) {
        let tm = TransferModel::titan_x_pascal_pinned();
        if tm.swappable(size, ati) {
            // more time can only help; less data can only help
            prop_assert!(tm.swappable(size, ati * 2));
            prop_assert!(tm.swappable(size / 2 + 1, ati));
        }
    }

    #[test]
    fn jitter_is_bounded_by_its_fraction(flops in 0u64..1_000_000_000, seed in 0u64..10_000) {
        let jittered = CostModel::titan_x_pascal().kernel_time_ns(flops, 0, seed);
        let base = CostModel::deterministic().kernel_time_ns(flops, 0, seed);
        let lo = (base as f64 * 0.94) as u64;
        let hi = (base as f64 * 1.06) as u64;
        prop_assert!(jittered >= lo && jittered <= hi, "{jittered} outside [{lo}, {hi}]");
    }
}

#[test]
fn marker_slices_partition_the_event_stream() {
    use pinpoint::core::{profile, ProfileConfig};
    let report = profile(&ProfileConfig::mlp_case_study(4)).unwrap();
    let trace = &report.trace;
    let total: usize = (0..trace.markers().len())
        .map(|i| trace.events_of_marker(i).len())
        .sum();
    let before_first = trace.markers()[0].event_index;
    assert_eq!(before_first + total, trace.len(), "slices cover everything");
}
