//! Property-based tests of the device models: the cost, transfer and
//! Equation-1 helpers must be monotone and consistent for all inputs.
//!
//! Randomized cases are driven by the in-repo seeded PRNG so the suite is
//! deterministic and needs no external property-testing framework.

use pinpoint::device::{CostModel, TransferModel};
use pinpoint::tensor::rng::Rng64;

const CASES: u64 = 128;

#[test]
fn kernel_time_is_monotone_in_flops_and_bytes() {
    let mut rng = Rng64::seed_from_u64(0xD01);
    for _ in 0..CASES {
        let flops = rng.gen_below(10_000_000_000);
        let bytes = rng.gen_below(10_000_000_000);
        let extra = 1 + rng.gen_below(1_000_000_000 - 1);
        let cm = CostModel::deterministic();
        let base = cm.kernel_time_ns(flops, bytes, 0);
        assert!(cm.kernel_time_ns(flops + extra, bytes, 0) >= base);
        assert!(cm.kernel_time_ns(flops, bytes + extra, 0) >= base);
        assert!(base >= cm.launch_overhead_ns.min(base));
        assert!(base >= 1);
    }
}

#[test]
fn roofline_takes_the_max_of_compute_and_memory() {
    let mut rng = Rng64::seed_from_u64(0xD02);
    for _ in 0..CASES {
        let flops = 1 + rng.gen_below(1_000_000_000 - 1);
        let bytes = 1 + rng.gen_below(1_000_000_000 - 1);
        let cm = CostModel::deterministic();
        let both = cm.kernel_time_ns(flops, bytes, 0);
        let compute_only = cm.kernel_time_ns(flops, 0, 0);
        let memory_only = cm.kernel_time_ns(0, bytes, 0);
        assert!(both + 1 >= compute_only.max(memory_only));
        // roofline, not sum: both never exceeds compute+memory bodies
        let overhead = cm.launch_overhead_ns;
        assert!(
            both <= compute_only + memory_only - overhead + 1,
            "{both} vs {compute_only}+{memory_only}"
        );
    }
}

#[test]
fn transfer_times_are_monotone_and_additive_in_latency() {
    let mut rng = Rng64::seed_from_u64(0xD03);
    for _ in 0..CASES {
        let bytes = rng.gen_below(1_000_000_000) as usize;
        let tm = TransferModel::titan_x_pascal_pinned();
        assert!(tm.h2d_time_ns(bytes) >= tm.latency_ns);
        assert!(tm.d2h_time_ns(bytes) >= tm.latency_ns);
        assert!(tm.h2d_time_ns(bytes + 1024) >= tm.h2d_time_ns(bytes));
        assert!(tm.d2h_time_ns(bytes + 1024) >= tm.d2h_time_ns(bytes));
    }
}

#[test]
fn equation_1_bound_is_linear_in_the_interval() {
    let mut rng = Rng64::seed_from_u64(0xD04);
    for _ in 0..CASES {
        let ati = 1 + rng.gen_below(10_000_000_000 - 1);
        let tm = TransferModel::titan_x_pascal_pinned();
        let s1 = tm.max_swap_bytes(ati);
        let s2 = tm.max_swap_bytes(2 * ati);
        assert!((s2 / s1 - 2.0).abs() < 1e-9, "{s1} vs {s2}");
        // refined bound never exceeds the plain bound
        assert!(tm.max_swap_bytes_with_latency(ati) <= s1);
    }
}

#[test]
fn swappable_is_monotone() {
    let mut rng = Rng64::seed_from_u64(0xD05);
    for _ in 0..CASES {
        let size = 1 + rng.gen_below(2_000_000_000 - 1) as usize;
        let ati = 1 + rng.gen_below(2_000_000_000 - 1);
        let tm = TransferModel::titan_x_pascal_pinned();
        if tm.swappable(size, ati) {
            // more time can only help; less data can only help
            assert!(tm.swappable(size, ati * 2));
            assert!(tm.swappable(size / 2 + 1, ati));
        }
    }
}

#[test]
fn jitter_is_bounded_by_its_fraction() {
    let mut rng = Rng64::seed_from_u64(0xD06);
    for _ in 0..CASES {
        let flops = rng.gen_below(1_000_000_000);
        let seed = rng.gen_below(10_000);
        let jittered = CostModel::titan_x_pascal().kernel_time_ns(flops, 0, seed);
        let base = CostModel::deterministic().kernel_time_ns(flops, 0, seed);
        let lo = (base as f64 * 0.94) as u64;
        let hi = (base as f64 * 1.06) as u64;
        assert!(
            jittered >= lo && jittered <= hi,
            "{jittered} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn marker_slices_partition_the_event_stream() {
    use pinpoint::core::{profile, ProfileConfig};
    let report = profile(&ProfileConfig::mlp_case_study(4)).unwrap();
    let trace = &report.trace;
    let total: usize = (0..trace.markers().len())
        .map(|i| trace.events_of_marker(i).len())
        .sum();
    let before_first = trace.markers()[0].event_index;
    assert_eq!(before_first + total, trace.len(), "slices cover everything");
}
