//! End-to-end integration: every zoo architecture profiles cleanly through
//! the whole stack, and the resulting traces satisfy global invariants.

use pinpoint::analysis::detect;
use pinpoint::core::{profile, ProfileConfig};
use pinpoint::data::DatasetSpec;
use pinpoint::models::{Architecture, DenseNetDepth, MlpConfig, ResNetDepth};
use pinpoint::trace::EventKind;

fn all_archs() -> Vec<Architecture> {
    vec![
        Architecture::Mlp(MlpConfig::default()),
        Architecture::LeNet5,
        Architecture::AlexNet,
        Architecture::Vgg16,
        Architecture::ResNet(ResNetDepth::R18),
        Architecture::ResNet(ResNetDepth::R34),
        Architecture::ResNet(ResNetDepth::R50),
        Architecture::ResNet(ResNetDepth::R101),
        Architecture::ResNet(ResNetDepth::R152),
        Architecture::Inception,
        Architecture::DenseNet(DenseNetDepth::D121),
        Architecture::DenseNet(DenseNetDepth::D169),
        Architecture::MobileNetV1,
    ]
}

#[test]
fn every_architecture_traces_cleanly() {
    for arch in all_archs() {
        let cfg = ProfileConfig::breakdown_sweep(arch, DatasetSpec::cifar100(), 8);
        let report = profile(&cfg).unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
        report
            .trace
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
        assert!(report.trace.len() > 10, "{}", arch.name());
        // every malloc has a matching size/offset free or survives as a
        // persistent parameter
        let stats = &report.alloc_stats;
        assert!(stats.num_frees <= stats.num_mallocs);
        assert!(stats.peak_allocated_bytes <= stats.peak_reserved_bytes);
    }
}

#[test]
fn three_iterations_are_periodic_for_conv_nets_too() {
    for arch in [
        Architecture::LeNet5,
        Architecture::ResNet(ResNetDepth::R18),
        Architecture::Inception,
    ] {
        let mut cfg = ProfileConfig::breakdown_sweep(arch, DatasetSpec::cifar100(), 8);
        cfg.iterations = 4;
        let report = profile(&cfg).unwrap();
        let r = detect(&report.trace);
        assert!(r.periodic, "{}: {r:?}", arch.name());
    }
}

#[test]
fn workspace_blocks_are_transient() {
    // conv workspaces must free before the next op launches: their
    // lifetime must never span two kernel launches
    let cfg = ProfileConfig::breakdown_sweep(Architecture::LeNet5, DatasetSpec::cifar100(), 8);
    let report = profile(&cfg).unwrap();
    let lifetimes = report.trace.lifetimes();
    let ws: Vec<_> = lifetimes
        .values()
        .filter(|lt| lt.mem_kind == pinpoint::trace::MemoryKind::Workspace)
        .collect();
    assert!(!ws.is_empty(), "conv nets allocate im2col workspaces");
    for lt in ws {
        assert!(lt.free_time_ns.is_some(), "workspace never freed");
        // exactly one kernel touches a workspace (read+write pair)
        assert_eq!(lt.accesses.len(), 2, "{lt:?}");
    }
}

#[test]
fn trace_events_account_for_all_reserved_memory() {
    let cfg = ProfileConfig::breakdown_sweep(Architecture::AlexNet, DatasetSpec::cifar100(), 16);
    let report = profile(&cfg).unwrap();
    // peak live bytes from the trace never exceeds what the allocator
    // reserved from the device
    let peak = report.trace.peak_live_bytes().peak_total_bytes;
    assert!(peak <= report.alloc_stats.peak_reserved_bytes as u64);
    assert!(peak > 0);
}

#[test]
fn mallocs_and_frees_balance_except_persistents() {
    let mut cfg = ProfileConfig::mlp_case_study(3);
    cfg.iterations = 3;
    let report = profile(&cfg).unwrap();
    let mallocs = report
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Malloc)
        .count() as u64;
    let frees = report
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Free)
        .count() as u64;
    // MLP: 4 persistent parameters remain live at the end
    assert_eq!(mallocs - frees, 4);
}
