//! Property-based tests of the executor over randomly generated MLP-family
//! programs: every generated program must trace cleanly, periodically, and
//! identically in concrete and symbolic modes.
//!
//! Randomized cases are driven by the in-repo seeded PRNG so the suite is
//! deterministic and needs no external property-testing framework.

use pinpoint::analysis::detect;
use pinpoint::device::{DeviceConfig, SimDevice};
use pinpoint::nn::exec::{BatchData, ExecMode, Executor};
use pinpoint::nn::{backward, GraphBuilder, Optimizer, Program};
use pinpoint::tensor::rng::Rng64;

const CASES: usize = 24;

#[derive(Debug, Clone)]
struct RandomMlp {
    batch: usize,
    widths: Vec<usize>,
    relu: bool,
    dropout: bool,
    optimizer: u8,
}

fn random_mlp(rng: &mut Rng64) -> RandomMlp {
    let n_widths = rng.gen_range_usize(1, 4);
    RandomMlp {
        batch: rng.gen_range_usize(2, 16),
        widths: (0..n_widths).map(|_| rng.gen_range_usize(1, 24)).collect(),
        relu: rng.gen_bool(),
        dropout: rng.gen_bool(),
        optimizer: rng.gen_below(3) as u8,
    }
}

fn build(cfg: &RandomMlp) -> Program {
    let mut b = GraphBuilder::new();
    let x = b.input("x", [cfg.batch, 3]);
    let y = b.labels("y", cfg.batch);
    let mut h = x;
    let mut in_dim = 3usize;
    for (i, &w) in cfg.widths.iter().enumerate() {
        let fc = pinpoint::nn::layers::Linear::new(&mut b, &format!("fc{i}"), in_dim, w, true);
        h = fc.forward(&mut b, h);
        if cfg.relu {
            h = b.relu(h, &format!("relu{i}"));
        }
        if cfg.dropout && w > 1 {
            h = b.dropout(h, 0.25, &format!("drop{i}"));
        }
        in_dim = w;
    }
    let head = pinpoint::nn::layers::Linear::new(&mut b, "head", in_dim, 2, true);
    let logits = head.forward(&mut b, h);
    let (loss, _) = b.softmax_cross_entropy(logits, y, "loss");
    let grads = backward(&mut b, loss);
    let opt = match cfg.optimizer {
        0 => Optimizer::Sgd { lr: 0.1 },
        1 => Optimizer::SgdMomentum { lr: 0.1, mu: 0.9 },
        _ => Optimizer::adam(1e-3),
    };
    opt.emit_step(&mut b, &grads);
    Program::compile(b.finish(), vec![x, y], loss)
}

fn batch_for(cfg: &RandomMlp, iter: u64) -> BatchData {
    let input: Vec<f32> = (0..cfg.batch * 3)
        .map(|i| ((i as f32 + iter as f32) * 0.77).sin())
        .collect();
    let labels: Vec<f32> = (0..cfg.batch).map(|i| (i % 2) as f32).collect();
    BatchData { input, labels }
}

#[test]
fn random_programs_trace_cleanly_and_periodically() {
    let mut rng = Rng64::seed_from_u64(0xE01);
    for _ in 0..CASES {
        let cfg = random_mlp(&mut rng);
        let program = build(&cfg);
        let device = SimDevice::new(DeviceConfig::deterministic());
        let mut exec = Executor::new(program, device, ExecMode::Symbolic).unwrap();
        exec.run_iterations(4).unwrap();
        let device = exec.into_device();
        device.trace().validate().unwrap();
        let report = detect(device.trace());
        assert!(report.periodic, "{cfg:?}: {report:?}");
        // no leaks beyond persistent storages
        let stats = device.alloc_stats();
        assert!(stats.allocated_bytes > 0, "params stay resident");
        assert!(stats.num_frees < stats.num_mallocs);
    }
}

#[test]
fn concrete_matches_symbolic_for_random_programs() {
    let mut rng = Rng64::seed_from_u64(0xE02);
    for _ in 0..CASES {
        let cfg = random_mlp(&mut rng);
        let d1 = SimDevice::new(DeviceConfig::deterministic());
        let mut sym = Executor::new(build(&cfg), d1, ExecMode::Symbolic).unwrap();
        sym.run_iterations(2).unwrap();
        let d2 = SimDevice::new(DeviceConfig::deterministic());
        let mut conc = Executor::new(build(&cfg), d2, ExecMode::Concrete).unwrap();
        for i in 0..2 {
            conc.run_iteration(Some(&batch_for(&cfg, i))).unwrap();
        }
        let ts = sym.into_device().into_trace();
        let tc = conc.into_device().into_trace();
        assert_eq!(ts.events(), tc.events());
        // concrete losses are finite
        assert!(!tc.is_empty());
    }
}

#[test]
fn losses_stay_finite_under_training() {
    let mut rng = Rng64::seed_from_u64(0xE03);
    for _ in 0..CASES {
        let cfg = random_mlp(&mut rng);
        let device = SimDevice::new(DeviceConfig::deterministic());
        let mut exec = Executor::new(build(&cfg), device, ExecMode::Concrete).unwrap();
        for i in 0..5 {
            let stats = exec.run_iteration(Some(&batch_for(&cfg, i))).unwrap();
            let loss = stats.loss.expect("concrete iterations report loss");
            assert!(loss.is_finite(), "{cfg:?} produced loss {loss}");
            assert!(loss >= 0.0);
        }
    }
}
