//! Failure-path integration tests: out-of-memory must surface as a typed
//! error at a deterministic point, never as a panic or a corrupt trace.

use pinpoint::core::{profile, ProfileConfig, ProfileError};
use pinpoint::data::DatasetSpec;
use pinpoint::device::alloc::{AllocError, CachingAllocator, DeviceAllocator};
use pinpoint::device::{AllocatorPolicy, DeviceConfig, SimDevice};
use pinpoint::models::Architecture;
use pinpoint::trace::MemoryKind;

#[test]
fn oom_error_is_typed_and_descriptive() {
    let mut cfg = ProfileConfig::breakdown_sweep(Architecture::Vgg16, DatasetSpec::imagenet(), 64);
    cfg.device.capacity_bytes = 1 << 30; // 1 GB cannot hold VGG-16 training
    let err = profile(&cfg).unwrap_err();
    let ProfileError::Device(AllocError::OutOfMemory {
        requested,
        capacity,
        reserved,
    }) = err
    else {
        panic!("expected OOM, got {err:?}");
    };
    assert_eq!(capacity, 1 << 30);
    assert!(reserved <= capacity);
    assert!(requested > 0);
}

#[test]
fn oom_point_is_deterministic() {
    let run = || {
        let mut cfg =
            ProfileConfig::breakdown_sweep(Architecture::Vgg16, DatasetSpec::cifar100(), 256);
        cfg.device.capacity_bytes = 200 << 20;
        profile(&cfg).unwrap_err()
    };
    assert_eq!(run(), run(), "the failure point must not wobble");
}

#[test]
fn capacity_exactly_at_peak_succeeds_and_one_byte_less_fails() {
    // measure the reserved-bytes requirement, then pin capacity to it
    let probe = ProfileConfig::breakdown_sweep(Architecture::LeNet5, DatasetSpec::cifar100(), 32);
    let report = profile(&probe).unwrap();
    let needed = report.alloc_stats.peak_reserved_bytes;
    let mut exact = probe.clone();
    exact.device.capacity_bytes = needed;
    assert!(profile(&exact).is_ok(), "exact capacity must fit");
    let mut tight = probe;
    // removing one 2 MB small-pool segment's worth must break it
    tight.device.capacity_bytes = needed - (2 << 20);
    assert!(matches!(
        profile(&tight),
        Err(ProfileError::Device(AllocError::OutOfMemory { .. }))
    ));
}

#[test]
fn failed_malloc_leaves_the_allocator_usable() {
    let mut a = CachingAllocator::new(30 << 20);
    let b1 = a.malloc(20 << 20).unwrap();
    assert!(a.malloc(20 << 20).is_err(), "second 20 MB cannot fit");
    // the failure must not corrupt state: freeing and retrying succeeds
    a.free(b1.id).unwrap();
    let b2 = a.malloc(20 << 20).unwrap();
    assert_eq!(b2.offset, b1.offset);
    a.debug_check_invariants().unwrap();
}

#[test]
fn trace_is_valid_up_to_the_oom() {
    // drive the device manually into OOM and confirm everything recorded
    // before the failure still validates
    let mut dev = SimDevice::new(DeviceConfig {
        capacity_bytes: 25 << 20,
        allocator: AllocatorPolicy::Caching,
        ..DeviceConfig::deterministic()
    });
    let a = dev
        .malloc(10 << 20, MemoryKind::Activation, Some("a"))
        .unwrap();
    dev.launch_kernel("work", 1000, 10 << 20, &[a], &[a]);
    let err = dev.malloc(30 << 20, MemoryKind::Activation, Some("b"));
    assert!(err.is_err());
    dev.trace()
        .validate()
        .expect("no partial events from the failed malloc");
    assert_eq!(dev.trace().len(), 3); // malloc + read + write only
}

#[test]
fn tiny_devices_fail_fast_at_parameter_upload() {
    let mut cfg = ProfileConfig::mlp_case_study(100);
    cfg.device.capacity_bytes = 1 << 10;
    let t0 = std::time::Instant::now();
    assert!(profile(&cfg).is_err());
    assert!(
        t0.elapsed().as_millis() < 2_000,
        "OOM during init must not run the full loop"
    );
}
