//! Property tests for the fused analysis engine: against seeded
//! pseudo-random traces, a fused multi-pass run must be bit-identical to
//! the five standalone passes, at any thread count, for both `.ptrc`
//! stores and in-memory traces — and must decode each chunk exactly once.

use pinpoint::analysis::{
    gantt_rects, sift, AtiDataset, AtiFold, BreakdownFold, BreakdownRow, FusedPipeline, GanttFold,
    OutlierCriteria, OutlierFold, PeakFold,
};
use pinpoint::store::{write_store_chunked, StoreReader};
use pinpoint::tensor::rng::Rng64;
use pinpoint::trace::{BlockId, EventKind, Marker, MemEvent, MemoryKind, Trace};
use std::io::Cursor;

/// Generates a pseudo-random trace: arbitrary event mixes, shared and
/// fresh blocks, op labels, markers (mirrors `store_roundtrip.rs`).
fn arbitrary_trace(rng: &mut Rng64, events: usize) -> Trace {
    let mut t = Trace::new();
    let n_labels = rng.gen_range_usize(0, 8);
    for i in 0..n_labels {
        t.intern_label(&format!("op.{i}"));
    }
    let kinds = [
        EventKind::Malloc,
        EventKind::Free,
        EventKind::Read,
        EventKind::Write,
    ];
    let mem_kinds = [
        MemoryKind::Input,
        MemoryKind::Weight,
        MemoryKind::WeightGrad,
        MemoryKind::OptimizerState,
        MemoryKind::Activation,
        MemoryKind::ActivationGrad,
        MemoryKind::Workspace,
        MemoryKind::Other,
    ];
    let mut time = 0u64;
    for _ in 0..events {
        let dt_bits = rng.gen_range_usize(1, 30);
        time += rng.gen_below(1 << dt_bits);
        let op_label = if n_labels > 0 && rng.gen_bool() {
            Some(rng.gen_range_usize(0, n_labels) as u32)
        } else {
            None
        };
        // few distinct blocks, so intervals and re-mallocs actually happen
        let block = BlockId(rng.gen_below(12));
        let size_bits = rng.gen_range_usize(1, 33);
        let offset_bits = rng.gen_range_usize(1, 38);
        t.push(MemEvent {
            time_ns: time,
            kind: kinds[rng.gen_range_usize(0, kinds.len())],
            block,
            size: rng.gen_below(1 << size_bits) as usize,
            offset: rng.gen_below(1 << offset_bits) as usize,
            mem_kind: mem_kinds[rng.gen_range_usize(0, mem_kinds.len())],
            op_label,
        });
        if rng.gen_range_usize(0, 25) == 0 {
            t.push_marker(Marker {
                time_ns: time,
                event_index: t.len(),
                label: format!("marker:{time}"),
            });
        }
    }
    t
}

fn store_of(t: &Trace, chunk: usize) -> StoreReader<Cursor<Vec<u8>>> {
    let mut bytes = Vec::new();
    write_store_chunked(t, &mut bytes, chunk).unwrap();
    StoreReader::new(Cursor::new(bytes)).unwrap()
}

/// The five standalone sequential passes — the oracle the fused engine
/// must reproduce bit for bit.
struct Oracle {
    ati: AtiDataset,
    peak: pinpoint::trace::PeakUsage,
    breakdown: BreakdownRow,
    gantt: Vec<pinpoint::analysis::GanttRect>,
    outliers: pinpoint::analysis::OutlierReport,
}

fn oracle(t: &Trace, criteria: OutlierCriteria) -> Oracle {
    let ati = AtiDataset::from_trace(t);
    let outliers = sift(&ati, criteria);
    Oracle {
        peak: t.peak_live_bytes(),
        breakdown: BreakdownRow::from_trace("trace", t),
        gantt: gantt_rects(t, 0, t.end_time_ns()),
        outliers,
        ati,
    }
}

#[allow(clippy::type_complexity)]
fn five_fold_pipeline(
    criteria: OutlierCriteria,
    t_end: u64,
) -> (
    FusedPipeline,
    pinpoint::analysis::FoldHandle<AtiDataset>,
    pinpoint::analysis::FoldHandle<pinpoint::trace::PeakUsage>,
    pinpoint::analysis::FoldHandle<BreakdownRow>,
    pinpoint::analysis::FoldHandle<Vec<pinpoint::analysis::GanttRect>>,
    pinpoint::analysis::FoldHandle<pinpoint::analysis::OutlierReport>,
) {
    let mut pipe = FusedPipeline::new();
    let ati = pipe.register(AtiFold);
    let peak = pipe.register(PeakFold);
    let breakdown = pipe.register(BreakdownFold {
        label: "trace".to_string(),
    });
    let gantt = pipe.register(GanttFold { t_start: 0, t_end });
    let outliers = pipe.register(OutlierFold { criteria });
    (pipe, ati, peak, breakdown, gantt, outliers)
}

#[test]
fn fused_five_passes_match_standalone_on_arbitrary_traces() {
    let criteria = OutlierCriteria {
        min_ati_ns: 1 << 20,
        min_size_bytes: 1 << 24,
    };
    let mut rng = Rng64::seed_from_u64(0xf05e_d0e5);
    for case in 0..20 {
        let events = rng.gen_range_usize(0, 500);
        let chunk = rng.gen_range_usize(1, 64);
        let t = arbitrary_trace(&mut rng, events);
        let want = oracle(&t, criteria);
        let end = t.end_time_ns();
        for threads in [1, 4] {
            // in-memory fused run
            let (pipe, ati, peak, breakdown, gantt, outliers) = five_fold_pipeline(criteria, end);
            let mut out = pipe.run_trace(&t, threads);
            let tag = format!("case {case}, chunk {chunk}, threads {threads}, in-memory");
            assert_eq!(out.take(ati), want.ati, "{tag}");
            assert_eq!(out.take(peak), want.peak, "{tag}");
            assert_eq!(out.take(breakdown), want.breakdown, "{tag}");
            assert_eq!(out.take(gantt), want.gantt, "{tag}");
            assert_eq!(out.take(outliers), want.outliers, "{tag}");

            // `.ptrc` fused run
            let mut r = store_of(&t, chunk);
            let (pipe, ati, peak, breakdown, gantt, outliers) = five_fold_pipeline(criteria, end);
            let mut out = pipe.run_store(&mut r, threads).unwrap();
            let tag = format!("case {case}, chunk {chunk}, threads {threads}, store");
            assert_eq!(out.take(ati), want.ati, "{tag}");
            assert_eq!(out.take(peak), want.peak, "{tag}");
            assert_eq!(out.take(breakdown), want.breakdown, "{tag}");
            assert_eq!(out.take(gantt), want.gantt, "{tag}");
            assert_eq!(out.take(outliers), want.outliers, "{tag}");
        }
    }
}

#[test]
fn fused_five_pass_run_decodes_each_chunk_exactly_once() {
    let mut rng = Rng64::seed_from_u64(0x0dec_0de1);
    let t = arbitrary_trace(&mut rng, 600);
    let mut r = store_of(&t, 32);
    let chunks = r.num_chunks();
    assert!(chunks >= 10, "need many chunks, got {chunks}");
    let criteria = OutlierCriteria {
        min_ati_ns: 1,
        min_size_bytes: 1,
    };
    let (pipe, ati, ..) = five_fold_pipeline(criteria, t.end_time_ns());
    let out = pipe.run_store(&mut r, 4).unwrap();
    // five consumers, one decode per chunk — not five
    assert_eq!(r.chunks_decoded(), chunks as u64);
    assert_eq!(out.stats().chunks_decoded, chunks);
    assert_eq!(out.stats().chunks_pruned, 0);
    assert_eq!(out.stats().events_scanned, t.len() as u64);
    let _ = { out }.take(ati);
}

#[test]
fn alloc_only_pipeline_prunes_chunks_but_stays_exact() {
    // only Malloc|Free folds registered -> the union predicate lets the
    // footer index skip access-only chunks, without changing any result
    let mut rng = Rng64::seed_from_u64(0x9a7e_5007);
    for case in 0..10 {
        let t = arbitrary_trace(&mut rng, 400);
        let mut r = store_of(&t, 16);
        let mut pipe = FusedPipeline::new();
        let peak = pipe.register(PeakFold);
        let breakdown = pipe.register(BreakdownFold {
            label: "trace".to_string(),
        });
        let mut out = pipe.run_store(&mut r, 1).unwrap();
        assert_eq!(out.take(peak), t.peak_live_bytes(), "case {case}");
        assert_eq!(
            out.take(breakdown),
            BreakdownRow::from_trace("trace", &t),
            "case {case}"
        );
        let stats = out.stats();
        assert_eq!(
            stats.chunks_decoded + stats.chunks_pruned,
            stats.chunks_total,
            "case {case}"
        );
        assert_eq!(r.chunks_decoded(), stats.chunks_decoded as u64);
    }
}
