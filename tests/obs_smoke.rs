//! Smoke tests for the `pinpoint-obs` self-observability layer at the
//! integration boundary: span-tree structure must be identical at every
//! thread count (the determinism contract extended to the tracer), the
//! disabled tracer must cost nothing on the store's zero-alloc scan
//! path, and the CLI's `--trace-out` Chrome trace must round-trip the
//! span hierarchy through the in-repo JSON parser.

use pinpoint::analysis::{report_json, OutlierCriteria};
use pinpoint::core::report::TraceReport;
use pinpoint::core::{profile, ProfileConfig};
use pinpoint::data::DatasetSpec;
use pinpoint::models::{Architecture, ResNetDepth};
use pinpoint::obs::tracer;
use pinpoint::store::StoreReader;
use pinpoint::trace::json::{parse, Json};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;
use std::sync::{Mutex, MutexGuard, OnceLock};

const CRITERIA: OutlierCriteria = OutlierCriteria {
    min_ati_ns: 800_000_000,
    min_size_bytes: 600_000_000,
};

/// The in-process tests drive the process-global tracer; serialize them
/// so the harness's concurrent test threads don't interleave spans.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A small but real store: the paper's Fig. 1 MLP case study, chunked
/// finely so the scan spans several chunks and threads=4 really fans
/// out worker threads (one chunk would degrade to the inline path).
fn mlp_store(tag: &str) -> PathBuf {
    let report = profile(&ProfileConfig::mlp_case_study(4)).unwrap();
    let path = std::env::temp_dir().join(format!("pinpoint_obs_{tag}_{}.ptrc", std::process::id()));
    let mut bytes = Vec::new();
    pinpoint::store::write_store_chunked(&report.trace, &mut bytes, 128).unwrap();
    std::fs::write(&path, bytes).unwrap();
    let chunks = StoreReader::open(&path).unwrap().num_chunks();
    assert!(chunks > 1, "fixture must span several chunks, got {chunks}");
    path
}

/// The ResNet-18 trace the CI `obs-smoke` job exercises the CLI with:
/// the paper's breakdown sweep at batch 8, chunked so the scan fans out.
fn resnet18_store(tag: &str) -> PathBuf {
    let cfg = ProfileConfig::breakdown_sweep(
        Architecture::ResNet(ResNetDepth::R18),
        DatasetSpec::cifar100(),
        8,
    );
    let report = profile(&cfg).unwrap();
    let path = std::env::temp_dir().join(format!(
        "pinpoint_obs_r18_{tag}_{}.ptrc",
        std::process::id()
    ));
    let mut bytes = Vec::new();
    pinpoint::store::write_store_chunked(&report.trace, &mut bytes, 2048).unwrap();
    std::fs::write(&path, bytes).unwrap();
    let chunks = StoreReader::open(&path).unwrap().num_chunks();
    assert!(chunks > 1, "fixture must span several chunks, got {chunks}");
    path
}

fn run_report(path: &std::path::Path, threads: usize) -> TraceReport {
    let mut r = StoreReader::open(path).unwrap();
    TraceReport::from_store(&mut r, CRITERIA, threads).unwrap()
}

fn bin(name: &str) -> PathBuf {
    // integration tests run from the workspace root; binaries are built
    // into the same profile directory as the test executable
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop();
    p.join(name)
}

#[test]
fn span_structure_is_thread_count_invariant() {
    let _g = obs_lock();
    let store = mlp_store("threads");
    let t = tracer();

    t.clear();
    t.set_enabled(true);
    let report_1 = run_report(&store, 1);
    let snap_1 = t.snapshot();
    t.clear();
    let report_4 = run_report(&store, 4);
    let snap_4 = t.snapshot();
    t.set_enabled(false);
    t.clear();

    assert_eq!(
        report_json(&report_1, 30),
        report_json(&report_4, 30),
        "analysis output must not depend on threads"
    );
    assert!(!snap_1.is_empty() && !snap_4.is_empty());

    // same spans, same counts — only the wall-clock totals may differ
    let names = |s: &pinpoint::obs::TraceSnapshot| -> Vec<(&str, u64)> {
        s.totals_by_name()
            .into_iter()
            .map(|(n, c, _)| (n, c))
            .collect()
    };
    assert_eq!(
        names(&snap_1),
        names(&snap_4),
        "span names/counts must be identical at any thread count"
    );

    // per-chunk subtree structure: at threads=1 the chunk spans nest
    // under the calling thread's scan, at threads=4 they are worker
    // roots — anchored at `store.chunk` the shapes must agree exactly
    assert_eq!(
        snap_1.relative_paths("store.chunk"),
        snap_4.relative_paths("store.chunk"),
        "chunk span subtrees must be identical at any thread count"
    );
    let anchored = snap_1.relative_paths("store.chunk");
    assert!(
        anchored
            .iter()
            .any(|(p, _)| p == "store.chunk;store.decode"),
        "decode spans must nest under their chunk: {anchored:?}"
    );
}

#[test]
fn disabled_tracer_adds_nothing_to_the_warm_scan_path() {
    let _g = obs_lock();
    let store = mlp_store("disabled");
    let t = tracer();
    t.set_enabled(false);
    t.clear();

    let records_before = t.total_records();
    let bufs_before = t.buffer_allocs();

    // same reader, scanned twice: the second (warm) scan must neither
    // grow the decode scratch pool nor touch the tracer
    let mut r = StoreReader::open(&store).unwrap();
    let cold = TraceReport::from_store(&mut r, CRITERIA, 4).unwrap();
    let warmed = r.decode_reallocs();
    let warm = TraceReport::from_store(&mut r, CRITERIA, 4).unwrap();
    assert_eq!(report_json(&cold, 30), report_json(&warm, 30));
    assert_eq!(
        r.decode_reallocs(),
        warmed,
        "warm scan must perform zero decode-buffer reallocations"
    );

    assert_eq!(
        t.total_records(),
        records_before,
        "disabled tracer must record no spans"
    );
    assert_eq!(
        t.buffer_allocs(),
        bufs_before,
        "disabled tracer must allocate no span buffers"
    );
    assert!(t.snapshot().is_empty());
}

/// Rebuilds every span's `;`-joined ancestor path from a Chrome trace's
/// events: grouped by `tid`, ordered by the exported open ticket, nested
/// by the exported depth — no timestamp containment needed.
fn chrome_paths(trace: &Json) -> Vec<String> {
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut by_tid: BTreeMap<u64, Vec<(u64, u64, String)>> = BTreeMap::new();
    for e in events {
        assert_eq!(
            e.get("ph").and_then(Json::as_str),
            Some("X"),
            "complete events only"
        );
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        let args = e.get("args").expect("args");
        by_tid.entry(tid).or_default().push((
            args.get("ticket").and_then(Json::as_u64).expect("ticket"),
            args.get("depth").and_then(Json::as_u64).expect("depth"),
            e.get("name")
                .and_then(Json::as_str)
                .expect("name")
                .to_string(),
        ));
    }
    let mut out = Vec::new();
    for (_, mut recs) in by_tid {
        recs.sort_by_key(|r| r.0);
        let mut stack: Vec<(u64, String)> = Vec::new();
        for (_, depth, name) in recs {
            while stack.last().is_some_and(|(d, _)| *d >= depth) {
                stack.pop();
            }
            let path = match stack.last() {
                Some((_, p)) => format!("{p};{name}"),
                None => name.clone(),
            };
            out.push(path.clone());
            stack.push((depth, path));
        }
    }
    out
}

/// Suffix of each path from the last `anchor` segment, sorted — the
/// thread-count-invariant shape of the anchored subtrees.
fn anchored(paths: &[String], anchor: &str) -> Vec<String> {
    let mut v: Vec<String> = paths
        .iter()
        .filter_map(|p| {
            let segs: Vec<&str> = p.split(';').collect();
            let i = segs.iter().rposition(|s| *s == anchor)?;
            Some(segs[i..].join(";"))
        })
        .collect();
    v.sort();
    v
}

#[test]
fn trace_out_round_trips_span_hierarchy_at_any_thread_count() {
    let store = resnet18_store("chrome");
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }

    // the reference stdout: the same report without any obs flags
    let plain = Command::new(&tool)
        .arg("report")
        .arg(&store)
        .output()
        .unwrap();
    assert!(plain.status.success(), "{plain:?}");

    let mut per_threads = Vec::new();
    for threads in ["1", "4"] {
        let trace_out = std::env::temp_dir().join(format!(
            "pinpoint_obs_chrome_{threads}_{}.json",
            std::process::id()
        ));
        let out = Command::new(&tool)
            .arg("report")
            .arg(&store)
            .args(["--threads", threads, "--timing", "--trace-out"])
            .arg(&trace_out)
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        // stdout stays byte-deterministic: the wall-clock-dependent
        // timing table and trace confirmation go to stderr
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&plain.stdout),
            "--timing/--trace-out must not change stdout"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("stage"), "timing table missing: {stderr}");
        assert!(
            stderr.contains("engine.run"),
            "stage rows missing: {stderr}"
        );
        assert!(stderr.contains("wrote"), "trace-out note missing: {stderr}");

        let json = std::fs::read_to_string(&trace_out).unwrap();
        let trace = parse(&json).expect("trace JSON must parse with the in-repo parser");
        let paths = chrome_paths(&trace);
        assert!(
            paths.iter().any(|p| p == "engine.run"),
            "engine root span missing: {paths:?}"
        );
        assert!(
            paths
                .iter()
                .any(|p| p.ends_with("store.chunk;store.decode")),
            "decode spans must nest under their chunk: {paths:?}"
        );
        per_threads.push(anchored(&paths, "store.chunk"));
    }
    assert_eq!(
        per_threads[0], per_threads[1],
        "exported chunk subtrees must be identical at any thread count"
    );
}

#[test]
fn query_timing_reports_store_stages() {
    let store = mlp_store("query");
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    let plain = Command::new(&tool)
        .arg("query")
        .arg(&store)
        .args(["--kind", "malloc", "--max", "5"])
        .output()
        .unwrap();
    assert!(plain.status.success(), "{plain:?}");
    let out = Command::new(&tool)
        .arg("query")
        .arg(&store)
        .args(["--kind", "malloc", "--max", "5", "--timing"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&plain.stdout),
        "--timing must not change stdout"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("store.query"), "{stderr}");
    assert!(stderr.contains("store.prune"), "{stderr}");
}
