//! Integration tests for the paper's five reproducible claims (C1–C5 in
//! DESIGN.md), at test scale.

use pinpoint::analysis::{sift, AtiDataset, EmpiricalCdf, OutlierCriteria};
use pinpoint::core::figures;
use pinpoint::core::{profile, EpochEval, ProfileConfig};
use pinpoint::device::TransferModel;

/// C1: block lifetimes repeat with a stable period across iterations, and
/// fragmentation under the caching allocator stays small.
#[test]
fn c1_iterative_patterns_and_low_fragmentation() {
    let fig2 = figures::fig2_gantt(5).expect("fig2");
    assert!(fig2.iterative.periodic);
    assert_eq!(fig2.iterative.iterations, 5);
    assert!(
        fig2.iterative.period_cv < 0.2,
        "cv {}",
        fig2.iterative.period_cv
    );
    assert!(fig2.worst_fragmentation.gap_fraction() < 0.5);
    // the period is also recoverable with no markers at all, straight from
    // the malloc signature sequence
    let report = profile(&ProfileConfig::mlp_case_study(6)).expect("profile");
    let mallocs_per_iter = pinpoint::analysis::period_from_mallocs(&report.trace, 256);
    assert!(mallocs_per_iter.is_some(), "marker-free period detection");
}

/// C2: the ATI distribution is concentrated; Equation 1 then bounds the
/// profitable swap size of typical behaviors to tens of kilobytes.
#[test]
fn c2_concentrated_atis_imply_tiny_swap_budgets() {
    let report = profile(&ProfileConfig::mlp_case_study(30)).expect("profile");
    let atis = AtiDataset::from_trace(&report.trace);
    let cdf = EmpiricalCdf::new(atis.intervals_ns());
    assert!(cdf.len() > 200);
    // concentration: the IQR is narrow relative to the full range
    let iqr = cdf.percentile(0.75) - cdf.percentile(0.25);
    let span = cdf.range().unwrap().1 - cdf.range().unwrap().0;
    assert!((iqr as f64) < 0.5 * span as f64, "iqr {iqr} vs span {span}");
    // the paper's Equation-1 consequence at the p90 ATI
    let tm = TransferModel::titan_x_pascal_pinned();
    let bound = tm.max_swap_bytes(cdf.percentile(0.9));
    assert!(
        bound < 1_500_000.0,
        "typical ATIs admit only small swaps, got {bound} B"
    );
}

/// C3: high-ATI × large-size outliers exist and pass Equation 1 — they are
/// the right swap targets.
#[test]
fn c3_outliers_are_the_swap_targets() {
    let mut cfg = ProfileConfig::mlp_case_study(101);
    cfg.epoch_eval = Some(EpochEval {
        iters_per_epoch: 50,
        buffer_bytes: 16_000_000,
    });
    let report = profile(&cfg).expect("profile");
    let atis = AtiDataset::from_trace(&report.trace);
    let outliers = sift(
        &atis,
        OutlierCriteria {
            min_ati_ns: 1_000_000,
            min_size_bytes: 8_000_000,
        },
    );
    assert!(!outliers.outliers.is_empty());
    let tm = TransferModel::titan_x_pascal_pinned();
    let red = outliers.most_extreme().unwrap();
    assert!(
        tm.swappable(red.size, red.interval_ns),
        "the extreme outlier must satisfy Equation 1"
    );
    // while typical behaviors do not
    let typical = atis
        .records()
        .iter()
        .filter(|r| r.interval_ns < 100_000 && r.size > 1_000_000)
        .take(50);
    for r in typical {
        assert!(!tm.swappable(r.size, r.interval_ns), "{r:?}");
    }
}

/// C4: parameters are a minor fraction of the footprint for most DNNs;
/// intermediates dominate.
#[test]
fn c4_parameters_minor_intermediates_dominate() {
    let rows = figures::fig5_breakdown(64).expect("fig5");
    let minor = rows.iter().filter(|r| r.fractions().1 < 0.4).count();
    assert!(minor >= rows.len() - 2, "{rows:?}");
    let inter_dominant = rows
        .iter()
        .filter(|r| {
            let (i, p, m) = r.fractions();
            m > i && m > p
        })
        .count();
    assert!(inter_dominant >= rows.len() - 2, "{rows:?}");
}

/// C5: growing batch size grows the intermediate share and shrinks the
/// parameter share; the input share grows slightly. Holds for linear
/// (AlexNet) and non-linear (ResNet) topologies.
#[test]
fn c5_batch_size_shifts_the_breakdown() {
    let alex = figures::fig6_alexnet(&[32, 256]).expect("fig6");
    for pair in alex.chunks(2) {
        let (i_s, p_s, m_s) = pair[0].fractions();
        let (i_b, p_b, m_b) = pair[1].fractions();
        assert!(m_b > m_s, "intermediates grow: {pair:?}");
        assert!(p_b < p_s, "parameters shrink: {pair:?}");
        assert!(i_b >= i_s * 0.9, "input share holds or grows: {pair:?}");
    }
    let res = figures::fig7_resnet(&[32, 256]).expect("fig7");
    for pair in res.chunks(2) {
        let (_, p_s, m_s) = pair[0].fractions();
        let (_, p_b, m_b) = pair[1].fractions();
        assert!(m_b >= m_s, "{pair:?}");
        assert!(p_b <= p_s, "{pair:?}");
    }
}

/// Equation 1's two worked examples, verbatim from the paper.
#[test]
fn equation_1_worked_examples() {
    let tm = TransferModel::titan_x_pascal_pinned();
    let s25us = tm.max_swap_bytes(25_000);
    assert!((s25us / 1e3 - 79.37).abs() < 0.1, "{s25us}");
    let s800ms = tm.max_swap_bytes(800_000_000);
    assert!((s800ms / 1e9 - 2.54).abs() < 0.01, "{s800ms}");
    // the red-marked outlier: 1200 MB at 840 211 µs is swappable
    assert!(tm.swappable(1_200_000_000, 840_211_000));
}
