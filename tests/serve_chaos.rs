//! Full-stack chaos harness for `pinpoint-serve`: a seeded in-process
//! driver hammers a live daemon with a shuffled mix of good queries,
//! salvage queries against a corrupted store, malformed and oversized
//! requests, mid-run store deletion/restoration, injected handler panics,
//! worker kills, and deadline-stalled handlers — across many seeds and
//! both worker-pool widths.
//!
//! The harness holds the daemon to exact books, not vibes:
//!
//! - every success body is byte-identical to the offline reader's answer,
//!   and the full body transcript is identical between `workers = 1` and
//!   `workers = 4` for the same seed;
//! - `/metrics` status counters match an independent client-side tally
//!   exactly (ok / client_error / server_error, panics, deadlines,
//!   respawns);
//! - every run shuts down cleanly (token drain or direct shutdown by
//!   seed parity) and no run leaks a thread.

use pinpoint::analysis::query_json;
use pinpoint::core::{profile, ProfileConfig};
use pinpoint::serve::{start, ServeConfig};
use pinpoint::store::{write_store_chunked, Predicate, ReadPolicy, SharedStoreReader, StoreReader};
use pinpoint::tensor::rng::Rng64;
use pinpoint::trace::EventKind;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// Chaos panics are deliberate; keep the test output readable while
/// still reporting any *unexpected* panic through the default hook.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !msg.starts_with("chaos:") {
                default(info);
            }
        }));
    });
}

fn roundtrip(addr: SocketAddr, request: &[u8]) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(request).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("full response");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn chaos(addr: SocketAddr, mode: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        format!(
            "POST /debug/chaos HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
             X-Pinpoint-Token: chaos\r\nContent-Length: {}\r\n\r\n{{\"mode\":\"{mode}\"}}",
            mode.len() + 11
        )
        .as_bytes(),
    )
}

fn metric(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// A canned query: the HTTP body plus the offline-computed truth for
/// both the pristine and the corrupted store.
struct Canned {
    body: String,
    want_good: String,
    want_flaky: String,
}

/// Independent client-side books, kept with the same status buckets as
/// the daemon's `count_status`.
#[derive(Default)]
struct Tally {
    ok: u64,
    client_error: u64,
    server_error: u64,
    panics: u64,
    kills: u64,
    stalls: u64,
}

impl Tally {
    fn count(&mut self, status: u16) {
        match status {
            200..=399 => self.ok += 1,
            400..=499 => self.client_error += 1,
            _ => self.server_error += 1,
        }
    }
}

fn threads_now() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

/// One seeded chaos run against a fresh daemon; returns the transcript
/// of every successful store-query body, in action order.
#[allow(clippy::too_many_lines)]
fn chaos_run(
    seed: u64,
    workers: usize,
    good_bytes: &[u8],
    flaky_bytes: &[u8],
    canned: &[Canned],
) -> Vec<String> {
    let dir = std::env::temp_dir().join(format!(
        "pinpoint-chaos-{seed}-w{workers}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("good.ptrc"), good_bytes).unwrap();
    let flaky_path = dir.join("flaky.ptrc");
    std::fs::write(&flaky_path, flaky_bytes).unwrap();

    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers,
        request_deadline_ms: 500,
        shutdown_token: Some("tok".to_string()),
        chaos_token: Some("chaos".to_string()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let mut rng = Rng64::seed_from_u64(seed);
    let mut tally = Tally::default();
    let mut bodies = Vec::new();
    let mut flaky_present = true;
    // stalls burn a full deadline each; gate them to a few seeds so the
    // whole sweep stays fast while the path still sees real coverage
    let stalls_allowed = u64::from(seed.is_multiple_of(8));

    for _ in 0..24 {
        match rng.gen_below(16) {
            0..=4 => {
                let q = &canned[rng.gen_below(canned.len() as u64) as usize];
                let (status, _, body) = post(addr, "/stores/good/query", &q.body);
                tally.count(status);
                assert_eq!(status, 200, "seed {seed}: {body}");
                assert_eq!(body, q.want_good, "seed {seed}: good body drifted");
                bodies.push(body);
            }
            5..=8 => {
                let q = &canned[rng.gen_below(canned.len() as u64) as usize];
                let (status, _, body) = post(addr, "/stores/flaky/query", &q.body);
                tally.count(status);
                if flaky_present {
                    assert_eq!(status, 200, "seed {seed}: {body}");
                    assert_eq!(body, q.want_flaky, "seed {seed}: salvage body drifted");
                    bodies.push(body);
                } else {
                    assert_eq!(status, 404, "seed {seed}: deleted store must 404");
                }
            }
            9 => {
                // unparseable request line: framing is gone, answer 400
                let (status, _, _) = roundtrip(addr, b"BLARG\r\n\r\n");
                tally.count(status);
                assert_eq!(status, 400, "seed {seed}");
            }
            10 => {
                // declared body far past the cap: refused before reading it
                let (status, _, _) = roundtrip(
                    addr,
                    b"POST /stores/good/query HTTP/1.1\r\nHost: x\r\n\
                      Content-Length: 9000000\r\n\r\n",
                );
                tally.count(status);
                assert_eq!(status, 413, "seed {seed}");
            }
            11 => {
                let (status, _, _) = post(addr, "/stores/missing/query", "{}");
                tally.count(status);
                assert_eq!(status, 404, "seed {seed}");
            }
            12 => {
                let (status, _, body) = chaos(addr, "panic");
                tally.count(status);
                tally.panics += 1;
                assert_eq!(status, 500, "seed {seed}: {body}");
                assert!(body.contains("handler panicked"), "seed {seed}: {body}");
            }
            13 => {
                let (status, _, _) = chaos(addr, "kill");
                tally.count(status);
                tally.kills += 1;
                assert_eq!(status, 204, "seed {seed}");
                // wait for the watchdog so the pool is back at full
                // strength before the next action (each poll is a
                // request too — keep the books straight)
                let deadline = std::time::Instant::now() + Duration::from_secs(5);
                loop {
                    let (status, _, m) = get(addr, "/metrics");
                    tally.count(status);
                    if metric(&m, "workers_respawned") >= tally.kills {
                        break;
                    }
                    assert!(
                        std::time::Instant::now() < deadline,
                        "seed {seed}: watchdog never respawned: {m}"
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            14 => {
                // mid-run store removal / restoration, no request issued;
                // the next flaky action observes whichever state holds
                if flaky_present {
                    std::fs::remove_file(&flaky_path).unwrap();
                } else {
                    std::fs::write(&flaky_path, flaky_bytes).unwrap();
                }
                flaky_present = !flaky_present;
            }
            _ => {
                if tally.stalls < stalls_allowed {
                    let (status, head, body) = chaos(addr, "stall");
                    tally.count(status);
                    tally.stalls += 1;
                    assert_eq!(status, 503, "seed {seed}: {body}");
                    assert!(head.contains("Retry-After: 1"), "seed {seed}: {head}");
                    assert!(body.contains("deadline exceeded"), "seed {seed}: {body}");
                } else {
                    let (status, _, _) = get(addr, "/stores");
                    tally.count(status);
                    assert_eq!(status, 200, "seed {seed}");
                }
            }
        }
    }

    // the daemon's books must agree with the client's, exactly — the
    // /metrics body excludes only this final request itself
    let (_, _, m) = get(addr, "/metrics");
    assert_eq!(metric(&m, "ok"), tally.ok, "seed {seed} w{workers}: {m}");
    assert_eq!(
        metric(&m, "client_error"),
        tally.client_error,
        "seed {seed} w{workers}: {m}"
    );
    assert_eq!(
        metric(&m, "server_error"),
        tally.server_error,
        "seed {seed} w{workers}: {m}"
    );
    assert_eq!(
        metric(&m, "panics_caught"),
        tally.panics,
        "seed {seed}: {m}"
    );
    assert_eq!(
        metric(&m, "workers_respawned"),
        tally.kills,
        "seed {seed}: {m}"
    );
    assert_eq!(
        metric(&m, "deadline_exceeded"),
        tally.stalls,
        "seed {seed}: {m}"
    );
    assert_eq!(metric(&m, "breaker_trips"), 0, "seed {seed}: {m}");

    // alternate the two clean-exit paths across seeds
    if seed.is_multiple_of(2) {
        handle.shutdown();
    } else {
        let (status, _, _) = roundtrip(
            addr,
            b"POST /shutdown HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
              X-Pinpoint-Token: tok\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 204, "seed {seed}: drain must start");
        handle.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
    bodies
}

/// The whole harness is one test so the thread-leak ledger sees a quiet
/// process: seeds × worker widths, exact books per run, byte-identical
/// transcripts across widths, and no thread left behind.
#[test]
fn seeded_chaos_sweep_keeps_exact_books_across_worker_widths() {
    quiet_chaos_panics();
    let baseline_threads = threads_now();

    // one trace, encoded once: `good` is pristine, `flaky` has a flipped
    // payload byte in chunk 1 (salvageable, deterministic loss)
    let report = profile(&ProfileConfig::mlp_case_study(3)).unwrap();
    let mut good_bytes = Vec::new();
    write_store_chunked(&report.trace, &mut good_bytes, 64).unwrap();
    let scratch = std::env::temp_dir().join(format!("pinpoint-chaos-truth-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let good_path = scratch.join("good.ptrc");
    std::fs::write(&good_path, &good_bytes).unwrap();
    let chunk1_off = {
        let reader = StoreReader::open(&good_path).unwrap();
        assert!(reader.num_chunks() > 2, "need several chunks");
        reader.footer().chunks[1].offset
    };
    let mut flaky_bytes = good_bytes.clone();
    flaky_bytes[chunk1_off as usize + 1] ^= 0x40;
    let flaky_path = scratch.join("flaky.ptrc");
    std::fs::write(&flaky_path, &flaky_bytes).unwrap();

    // offline truth for every canned query, against both stores
    let canned: Vec<Canned> = [
        (
            "{\"kind\":\"malloc\",\"max\":10}",
            Some(EventKind::Malloc),
            10,
        ),
        ("{\"kind\":\"free\",\"max\":5}", Some(EventKind::Free), 5),
        ("{\"max\":8}", None, 8),
    ]
    .into_iter()
    .map(|(body, kind, max)| {
        let pred = match kind {
            Some(k) => Predicate::any().with_kind(k),
            None => Predicate::any(),
        };
        let truth = |path: &PathBuf| {
            let reader = SharedStoreReader::open_with_policy(path, ReadPolicy::Salvage).unwrap();
            query_json(&reader.query(&pred, 1).unwrap(), max)
        };
        Canned {
            body: body.to_string(),
            want_good: truth(&good_path),
            want_flaky: truth(&flaky_path),
        }
    })
    .collect();
    {
        // the corruption must actually bite, or `flaky` tests nothing
        let reader = SharedStoreReader::open_with_policy(&flaky_path, ReadPolicy::Salvage).unwrap();
        let stats = reader.query(&Predicate::any(), 1).unwrap().stats;
        assert!(stats.chunks_skipped >= 1 && stats.events_lost > 0);
    }

    let seeds: u64 = std::env::var("PINPOINT_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for seed in 0..seeds {
        let narrow = chaos_run(seed, 1, &good_bytes, &flaky_bytes, &canned);
        let wide = chaos_run(seed, 4, &good_bytes, &flaky_bytes, &canned);
        assert_eq!(
            narrow, wide,
            "seed {seed}: success transcript must not depend on pool width"
        );
    }

    // every daemon joined its threads; give stragglers a moment, then
    // hold the line
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if threads_now() <= baseline_threads {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "leaked threads: baseline {baseline_threads}, now {}",
            threads_now()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
