//! Resilience tests for the `pinpoint-serve` daemon: deadline budgets
//! that cut doomed work with a deterministic `503`, panic isolation
//! (contained 500s and watchdog respawns), the per-store circuit
//! breaker's full deterministic cycle, graceful drain with `/healthz`
//! observability, and slow-loris defense via the I/O timeout.

use pinpoint::core::{profile, ProfileConfig};
use pinpoint::serve::breaker::cooldown_rejections;
use pinpoint::serve::{start, BreakerConfig, ServeConfig};
use pinpoint::store::write_store_file;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// Keeps `cargo test` output readable: chaos panics (`panic` / `kill`
/// injection) are deliberate, so their reports are swallowed; every
/// other panic still reaches the default hook.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !msg.starts_with("chaos:") {
                default(info);
            }
        }));
    });
}

fn tmp_catalog(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pinpoint-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mlp_store(dir: &std::path::Path, name: &str) -> PathBuf {
    let report = profile(&ProfileConfig::mlp_case_study(3)).unwrap();
    let path = dir.join(format!("{name}.ptrc"));
    write_store_file(&report.trace, &path).unwrap();
    path
}

fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(request.as_bytes()).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("full response");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    post_with(addr, path, body, "")
}

/// POST with extra raw header lines (each ending in `\r\n`).
fn post_with(addr: SocketAddr, path: &str, body: &str, extra: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n{extra}\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header<'a>(head: &'a str, name: &str) -> &'a str {
    head.lines()
        .find_map(|l| l.strip_prefix(&format!("{name}: ")))
        .unwrap_or_else(|| panic!("missing header {name} in:\n{head}"))
        .trim()
}

/// First occurrence of a flat `/metrics` counter.
fn metric(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn chaos(addr: SocketAddr, mode: &str) -> (u16, String, String) {
    post_with(
        addr,
        "/debug/chaos",
        &format!("{{\"mode\":\"{mode}\"}}"),
        "X-Pinpoint-Token: chaos\r\n",
    )
}

/// A stalled handler is cut loose by its request deadline: the answer
/// is a deterministic `503` + `Retry-After: 1`, and the cut is visible
/// in `deadline_exceeded` and the `deadline` latency histogram.
#[test]
fn deadline_cuts_a_stalled_request_to_a_deterministic_503() {
    let dir = tmp_catalog("deadline");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        request_deadline_ms: 100,
        chaos_token: Some("chaos".to_string()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // gating first: no token header → 403, the endpoint gives nothing away
    let (status, _, _) = post(addr, "/debug/chaos", "{\"mode\":\"stall\"}");
    assert_eq!(status, 403);

    let (status, head, body) = chaos(addr, "stall");
    assert_eq!(status, 503, "{body}");
    assert_eq!(header(&head, "Retry-After"), "1");
    assert!(body.contains("deadline exceeded"), "{body}");

    // an ordinary request with budget to spare still answers
    let (status, _, _) = post(addr, "/stores/mlp/query", "{\"kind\":\"malloc\"}");
    assert_eq!(status, 200);

    let (_, _, m) = get(addr, "/metrics");
    assert_eq!(metric(&m, "deadline_exceeded"), 1, "{m}");
    assert!(m.contains("\"deadline\":{\"count\":1"), "{m}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panicking handler becomes a stable `500` and the worker keeps
/// serving — with one worker, the very next request proves survival.
#[test]
fn a_handler_panic_is_contained_and_the_worker_survives() {
    quiet_chaos_panics();
    let dir = tmp_catalog("panic");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        chaos_token: Some("chaos".to_string()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let (status, _, body) = chaos(addr, "panic");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("handler panicked"), "{body}");

    // same worker, next request: alive and correct
    let (status, _, _) = post(addr, "/stores/mlp/query", "{\"kind\":\"free\"}");
    assert_eq!(status, 200);

    let (_, _, m) = get(addr, "/metrics");
    assert_eq!(metric(&m, "panics_caught"), 1, "{m}");
    assert_eq!(metric(&m, "workers_respawned"), 0, "{m}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker that dies outside the unwind guard is respawned by the
/// watchdog, and the pool keeps serving.
#[test]
fn a_killed_worker_is_respawned_by_the_watchdog() {
    quiet_chaos_panics();
    let dir = tmp_catalog("kill");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        chaos_token: Some("chaos".to_string()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let (status, _, _) = chaos(addr, "kill");
    assert_eq!(status, 204, "kill answers before dying");

    // the watchdog polls every ~10ms; wait for the respawn to land
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, _, m) = get(addr, "/metrics");
        if metric(&m, "workers_respawned") >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watchdog never respawned the worker: {m}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let (status, _, _) = post(addr, "/stores/mlp/query", "{\"kind\":\"malloc\"}");
    assert_eq!(status, 200, "the respawned worker serves stores");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full deterministic breaker cycle against a real on-disk failure:
/// consecutive hard 500s trip it, exactly `cooldown_rejections` requests
/// are refused with `Retry-After`, the half-open probe runs against the
/// repaired file, and success closes the breaker.
#[test]
fn breaker_trips_on_hard_failures_and_recovers_through_a_probe() {
    let dir = tmp_catalog("breaker");
    let store = mlp_store(&dir, "mlp");
    let good_bytes = std::fs::read(&store).unwrap();
    let config = BreakerConfig {
        threshold: 2,
        cooldown: 2,
        seed: 7,
    };
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        breaker: config,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let q = "{\"kind\":\"malloc\",\"max\":5}";

    let (status, _, baseline) = post(addr, "/stores/mlp/query", q);
    assert_eq!(status, 200);

    // replace the store with garbage (different length → new generation):
    // not salvageable, every open is a hard failure
    std::fs::write(&store, b"this is not a ptrc store at all").unwrap();
    for i in 0..config.threshold {
        let (status, _, body) = post(addr, "/stores/mlp/query", q);
        assert_eq!(status, 500, "hard failure {i}: {body}");
        assert!(body.contains("cannot open store"), "{body}");
    }

    // tripped: exactly k rejections, breaker state visible everywhere
    let k = cooldown_rejections(&config, "mlp", 1);
    let (_, _, h) = get(addr, "/healthz");
    assert!(h.contains("\"breakers_open\":1"), "{h}");
    for i in 0..k {
        let (status, head, body) = post(addr, "/stores/mlp/query", q);
        assert_eq!(status, 503, "rejection {i}: {body}");
        assert_eq!(header(&head, "X-Pinpoint-Breaker"), "open");
        assert!(body.contains("store circuit open"), "{body}");
        let retry: u64 = header(&head, "Retry-After").parse().unwrap();
        assert_eq!(
            retry,
            u64::from(k - 1 - i).clamp(1, 8),
            "deterministic backoff"
        );
    }
    let (_, _, m) = get(addr, "/metrics");
    assert_eq!(metric(&m, "breaker_trips"), 1, "{m}");
    assert_eq!(metric(&m, "breaker_rejected"), u64::from(k), "{m}");
    assert_eq!(metric(&m, "breaker_half_open"), 1, "{m}");

    // repair the file; the next request is the half-open probe and closes
    // the breaker, answering the same bytes as before the outage
    std::fs::write(&store, &good_bytes).unwrap();
    let (status, _, body) = post(addr, "/stores/mlp/query", q);
    assert_eq!(status, 200, "probe succeeds: {body}");
    assert_eq!(body, baseline, "repaired store answers identical bytes");
    let (_, _, m) = get(addr, "/metrics");
    assert_eq!(metric(&m, "breaker_open"), 0, "{m}");
    assert_eq!(metric(&m, "breaker_half_open"), 0, "{m}");
    let (status, _, _) = post(addr, "/stores/mlp/query", q);
    assert_eq!(status, 200, "closed breaker admits normally");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The control plane outranks the deadline: a `/shutdown` that starved
/// in the queue behind a slow client — for longer than its whole
/// request budget — must still be honored, or a wedged single-worker
/// daemon could never be drained.
#[test]
fn queue_starved_shutdown_is_still_honored() {
    let dir = tmp_catalog("starved");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        io_timeout_ms: 400,
        request_deadline_ms: 100,
        shutdown_token: Some("tok".to_string()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // pin the only worker: one served request, then silence — the
    // worker sits in the keep-alive read until the 400ms io timeout,
    // so anything queued behind it waits longer than the 100ms budget
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let q = "{\"kind\":\"malloc\",\"max\":1}";
    slow.write_all(
        format!(
            "POST /stores/mlp/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{q}",
            q.len()
        )
        .as_bytes(),
    )
    .unwrap();
    assert_eq!(read_one_response(&mut slow).0, 200);

    let (status, _, body) = post_with(addr, "/shutdown", "", "X-Pinpoint-Token: tok\r\n");
    assert_eq!(status, 204, "a starved shutdown must not be doomed: {body}");
    drop(slow);
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain: `/shutdown` flips `/healthz` to `503 draining`,
/// drain-time connections get refused store service while pre-drain
/// connections finish full service, and the daemon then exits cleanly.
#[test]
fn graceful_drain_finishes_inflight_work_and_stays_observable() {
    let dir = tmp_catalog("drain");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        shutdown_token: Some("tok".to_string()),
        drain_deadline_ms: 10_000,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let (_, _, h) = get(addr, "/healthz");
    assert!(h.contains("\"status\":\"ready\""), "{h}");

    // a pre-drain keep-alive connection, held open across the shutdown
    let mut pre = TcpStream::connect(addr).unwrap();
    pre.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let q = "{\"kind\":\"malloc\",\"max\":3}";
    let req = format!(
        "POST /stores/mlp/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{q}",
        q.len()
    );
    pre.write_all(req.as_bytes()).unwrap();
    let first = read_one_response(&mut pre);
    assert_eq!(first.0, 200);
    assert!(first.1.contains("Connection: keep-alive"), "{}", first.1);

    // start the drain; the response itself is a 204
    let (status, _, _) = post_with(addr, "/shutdown", "", "X-Pinpoint-Token: tok\r\n");
    assert_eq!(status, 204);

    // drain-time connections: health stays observable, stores are refused
    let (status, head, h) = get(addr, "/healthz");
    assert_eq!(status, 503);
    assert!(h.contains("\"status\":\"draining\""), "{h}");
    assert_eq!(header(&head, "Retry-After"), "1");
    let (status, head, body) = post(addr, "/stores/mlp/query", q);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("draining"), "{body}");
    assert_eq!(header(&head, "Retry-After"), "1");

    // the pre-drain connection still gets full service — and then the
    // daemon tells it to close and finishes the drain
    pre.write_all(req.as_bytes()).unwrap();
    let second = read_one_response(&mut pre);
    assert_eq!(second.0, 200);
    assert_eq!(second.2, first.2, "drained request answers identical bytes");
    assert!(second.1.contains("Connection: close"), "{}", second.1);
    drop(pre);

    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Slow-loris defense: a client that trickles a header forever (or never
/// finishes one) is cut at the I/O timeout, the cut is counted, and the
/// single worker is free again for real clients.
#[test]
fn slowloris_clients_are_cut_by_the_io_timeout() {
    let dir = tmp_catalog("loris");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        io_timeout_ms: 200,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // half a request head, then silence: the worker must not wait forever
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"GET /stores HTTP/1.1\r\nHost: x").unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = Vec::new();
    loris.read_to_end(&mut sink).unwrap();
    assert!(
        sink.is_empty(),
        "a half-request earns no response, just a close"
    );
    drop(loris);

    // with its one worker freed, the daemon serves normally again
    let (status, _, _) = post(addr, "/stores/mlp/query", "{\"kind\":\"free\"}");
    assert_eq!(status, 200);
    let (_, _, m) = get(addr, "/metrics");
    assert_eq!(metric(&m, "conn_timeouts"), 1, "{m}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads one `Content-Length`-framed response off a kept-alive stream
/// without waiting for EOF.
fn read_one_response(s: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = s.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let len: usize = header(&head, "Content-Length").parse().unwrap();
    while buf.len() < head_end + 4 + len {
        let n = s.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF before response body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[head_end + 4..head_end + 4 + len].to_vec()).unwrap();
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, head, body)
}
