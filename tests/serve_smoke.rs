//! Smoke tests for the `pinpoint-serve` daemon at the process boundary:
//! scripted TCP sessions against an in-process server, byte-identity
//! against the CLI's offline `--json` output, salvage answers for damaged
//! stores with exact loss accounting, deterministic overload shedding,
//! and the `pinpoint-trace-tool serve` subcommand end to end.

use pinpoint::core::{profile, ProfileConfig};
use pinpoint::serve::{start, ServeConfig};
use pinpoint::store::{write_store_file, Predicate, ReadPolicy, SharedStoreReader, StoreReader};
use pinpoint::trace::EventKind;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn bin(name: &str) -> PathBuf {
    // integration tests run from the workspace root; binaries are built
    // into the same profile directory as the test executable
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop();
    p.join(name)
}

fn tmp_catalog(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pinpoint-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but real trace: the paper's Fig. 1 MLP case study.
fn mlp_store(dir: &std::path::Path, name: &str) -> PathBuf {
    let report = profile(&ProfileConfig::mlp_case_study(3)).unwrap();
    let path = dir.join(format!("{name}.ptrc"));
    write_store_file(&report.trace, &path).unwrap();
    path
}

/// One request/response round trip over a fresh connection.
fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(request.as_bytes()).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("full response");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    roundtrip(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header_u64(head: &str, name: &str) -> u64 {
    head.lines()
        .find_map(|l| l.strip_prefix(&format!("{name}: ")))
        .unwrap_or_else(|| panic!("missing header {name} in:\n{head}"))
        .trim()
        .parse()
        .unwrap()
}

/// The daemon's query and report responses are the same bytes as the
/// CLI's `--json` output on the same store — the contract that lets
/// dashboards switch between the two without re-parsing.
#[test]
fn daemon_bodies_match_cli_json_output() {
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    let dir = tmp_catalog("cli-ident");
    let store = mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // report: daemon defaults == CLI defaults (800 ms / 600 MB / max 30)
    let (status, _, daemon) = post(addr, "/stores/mlp/report", "");
    assert_eq!(status, 200);
    let out = Command::new(&tool)
        .arg("report")
        .arg(&store)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let cli = String::from_utf8(out.stdout).unwrap();
    assert_eq!(daemon, cli.trim_end_matches('\n'), "report bytes diverge");

    // query: same predicate via JSON body and CLI flags, several thread
    // counts on the CLI side — identical bytes every way
    let (status, _, daemon) = post(
        addr,
        "/stores/mlp/query",
        "{\"kind\":\"malloc\",\"min_size_bytes\":1000,\"max\":7}",
    );
    assert_eq!(status, 200);
    for threads in ["1", "4"] {
        let out = Command::new(&tool)
            .arg("query")
            .arg(&store)
            .args(["--kind", "malloc", "--min-size-bytes", "1000", "--max", "7"])
            .args(["--threads", threads, "--json"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        let cli = String::from_utf8(out.stdout).unwrap();
        assert_eq!(
            daemon,
            cli.trim_end_matches('\n'),
            "query bytes diverge at --threads {threads}"
        );
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged store answers 200 under salvage with the exact loss carried
/// in response headers — the same accounting the offline salvage reader
/// reports, not an approximation.
#[test]
fn corrupt_store_answers_with_exact_loss_accounting() {
    let dir = tmp_catalog("salvage");
    // chunk finely so the trace spans many chunks and one lost chunk is
    // a small, precisely-accounted slice of the answer
    let report = profile(&ProfileConfig::mlp_case_study(3)).unwrap();
    let mut encoded = Vec::new();
    pinpoint::store::write_store_chunked(&report.trace, &mut encoded, 64).unwrap();
    let store = dir.join("hurt.ptrc");
    std::fs::write(&store, &encoded).unwrap();

    // flip one payload byte inside chunk 1 so its CRC check fails
    let chunk1_off = {
        let reader = StoreReader::open(&store).unwrap();
        assert!(reader.num_chunks() > 2, "need several chunks");
        reader.footer().chunks[1].offset
    };
    let mut bytes = std::fs::read(&store).unwrap();
    bytes[chunk1_off as usize + 1] ^= 0x40;
    std::fs::write(&store, &bytes).unwrap();

    // offline truth: the shared salvage reader's loss accounting
    let reader = SharedStoreReader::open_with_policy(&store, ReadPolicy::Salvage).unwrap();
    let pred = Predicate::any().with_kind(EventKind::Malloc);
    let want = reader.query(&pred, 1).unwrap();
    assert!(want.stats.chunks_skipped >= 1, "corruption must be seen");
    assert!(want.stats.events_lost > 0);

    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let (status, head, body) = post(
        addr,
        "/stores/hurt/query",
        "{\"kind\":\"malloc\",\"max\":20}",
    );
    assert_eq!(status, 200, "salvage answers, it does not error: {body}");
    assert_eq!(
        header_u64(&head, "X-Pinpoint-Chunks-Skipped"),
        want.stats.chunks_skipped as u64
    );
    assert_eq!(
        header_u64(&head, "X-Pinpoint-Events-Lost"),
        want.stats.events_lost
    );
    assert_eq!(body, pinpoint::analysis::query_json(&want, 20));

    // report over the same damaged store: 200 with the loss in headers
    let (status, head, _) = post(addr, "/stores/hurt/report", "");
    assert_eq!(status, 200);
    assert!(header_u64(&head, "X-Pinpoint-Events-Lost") > 0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store deleted out from under the catalog is a 404, never a panic or
/// a hang; a name that was never there is the same 404.
#[test]
fn deleted_store_is_a_404_not_a_panic() {
    let dir = tmp_catalog("deleted");
    let store = mlp_store(&dir, "gone");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // the directory listing sees it, but it vanishes before first open
    let (status, _, body) = get(addr, "/stores");
    assert_eq!(status, 200);
    assert!(body.contains("\"gone\""), "{body}");
    std::fs::remove_file(&store).unwrap();
    let (status, _, _) = get(addr, "/stores/gone/info");
    assert_eq!(status, 404);
    let (status, _, _) = post(addr, "/stores/never/query", "{}");
    assert_eq!(status, 404);

    // the server is still healthy afterwards
    let (status, _, _) = get(addr, "/metrics");
    assert_eq!(status, 200);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// With one worker and a one-deep queue, the third concurrent connection
/// is shed with `503 Retry-After: 1` — deterministically, and without
/// disturbing the two admitted requests.
#[test]
fn overload_sheds_a_deterministic_503() {
    let dir = tmp_catalog("shed");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // c1 pins the single worker: it sends half a request and stalls
    let mut c1 = TcpStream::connect(addr).unwrap();
    c1.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c1.write_all(b"GET /stores HTTP/1.1\r\nHost:").unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // c2 fills the one queue slot
    let mut c2 = TcpStream::connect(addr).unwrap();
    c2.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c2.write_all(b"GET /stores HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // c3 finds the queue full and is refused at the door
    let mut c3 = TcpStream::connect(addr).unwrap();
    c3.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut refusal = Vec::new();
    c3.read_to_end(&mut refusal).unwrap();
    let refusal = String::from_utf8(refusal).unwrap();
    assert!(refusal.starts_with("HTTP/1.1 503"), "{refusal}");
    assert!(refusal.contains("Retry-After: 1"), "{refusal}");

    // un-stall c1: both admitted requests complete normally
    c1.write_all(b" x\r\n\r\n").unwrap();
    for c in [&mut c1, &mut c2] {
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("\"mlp\""), "{text}");
    }

    // the shed is counted
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("\"shed\":1"), "{body}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CLI `serve` subcommand end to end: spawn the daemon as a child
/// process, parse the bound port from its banner, query it over TCP, and
/// stop it cleanly through the token-gated shutdown endpoint.
#[test]
fn cli_serve_round_trip() {
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    let dir = tmp_catalog("cli-serve");
    mlp_store(&dir, "mlp");
    let mut child = Command::new(&tool)
        .arg("serve")
        .args(["--catalog"])
        .arg(&dir)
        .args(["--addr", "127.0.0.1:0", "--shutdown-token", "tok"])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();

    // the first stdout line carries the bound address
    let mut out = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    out.read_line(&mut banner).unwrap();
    let addr: SocketAddr = banner
        .split_once("http://")
        .and_then(|(_, rest)| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .parse()
        .unwrap();

    let (status, _, body) = get(addr, "/stores");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"stores\":[\"mlp\"]}");

    // shutdown requires the token, then the process exits cleanly
    let (status, _, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 403);
    let (status, _, _) = roundtrip(
        addr,
        "POST /shutdown HTTP/1.1\r\nHost: x\r\nX-Pinpoint-Token: tok\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 204);
    let status = child.wait().unwrap();
    assert!(status.success(), "serve must exit cleanly: {status:?}");
    let mut rest = String::new();
    out.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("shutdown complete"), "{rest:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
