//! Smoke tests for the `pinpoint-serve` daemon at the process boundary:
//! scripted TCP sessions against an in-process server, byte-identity
//! against the CLI's offline `--json` output, salvage answers for damaged
//! stores with exact loss accounting, deterministic overload shedding,
//! keep-alive sessions, result-cache behavior (hits, eviction,
//! generation invalidation, conditional `304`s), and the
//! `pinpoint-trace-tool serve` subcommand end to end.

use pinpoint::core::{profile, ProfileConfig};
use pinpoint::serve::{start, ServeConfig};
use pinpoint::store::{write_store_file, Predicate, ReadPolicy, SharedStoreReader, StoreReader};
use pinpoint::trace::EventKind;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn bin(name: &str) -> PathBuf {
    // integration tests run from the workspace root; binaries are built
    // into the same profile directory as the test executable
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop();
    p.join(name)
}

fn tmp_catalog(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pinpoint-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but real trace: the paper's Fig. 1 MLP case study.
fn mlp_store(dir: &std::path::Path, name: &str) -> PathBuf {
    let report = profile(&ProfileConfig::mlp_case_study(3)).unwrap();
    let path = dir.join(format!("{name}.ptrc"));
    write_store_file(&report.trace, &path).unwrap();
    path
}

/// One request/response round trip over a fresh connection. The request
/// must carry `Connection: close` (the helpers below do) so reading to
/// EOF terminates.
fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(request.as_bytes()).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("full response");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    post_with(addr, path, body, "")
}

/// POST with extra raw header lines (each ending in `\r\n`).
fn post_with(addr: SocketAddr, path: &str, body: &str, extra: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n{extra}\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header_u64(head: &str, name: &str) -> u64 {
    header(head, name).parse().unwrap()
}

fn header<'a>(head: &'a str, name: &str) -> &'a str {
    head.lines()
        .find_map(|l| l.strip_prefix(&format!("{name}: ")))
        .unwrap_or_else(|| panic!("missing header {name} in:\n{head}"))
        .trim()
}

/// Reads one `Content-Length`-framed response off a kept-alive stream
/// without waiting for EOF.
fn read_one_response(s: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = s.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let len: usize = header(&head, "Content-Length").parse().unwrap();
    while buf.len() < head_end + 4 + len {
        let n = s.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF before response body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[head_end + 4..head_end + 4 + len].to_vec()).unwrap();
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, head, body)
}

/// The daemon's query and report responses are the same bytes as the
/// CLI's `--json` output on the same store — the contract that lets
/// dashboards switch between the two without re-parsing.
#[test]
fn daemon_bodies_match_cli_json_output() {
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    let dir = tmp_catalog("cli-ident");
    let store = mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // report: daemon defaults == CLI defaults (800 ms / 600 MB / max 30)
    let (status, _, daemon) = post(addr, "/stores/mlp/report", "");
    assert_eq!(status, 200);
    let out = Command::new(&tool)
        .arg("report")
        .arg(&store)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let cli = String::from_utf8(out.stdout).unwrap();
    assert_eq!(daemon, cli.trim_end_matches('\n'), "report bytes diverge");

    // query: same predicate via JSON body and CLI flags, several thread
    // counts on the CLI side — identical bytes every way
    let (status, _, daemon) = post(
        addr,
        "/stores/mlp/query",
        "{\"kind\":\"malloc\",\"min_size_bytes\":1000,\"max\":7}",
    );
    assert_eq!(status, 200);
    for threads in ["1", "4"] {
        let out = Command::new(&tool)
            .arg("query")
            .arg(&store)
            .args(["--kind", "malloc", "--min-size-bytes", "1000", "--max", "7"])
            .args(["--threads", threads, "--json"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        let cli = String::from_utf8(out.stdout).unwrap();
        assert_eq!(
            daemon,
            cli.trim_end_matches('\n'),
            "query bytes diverge at --threads {threads}"
        );
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged store answers 200 under salvage with the exact loss carried
/// in response headers — the same accounting the offline salvage reader
/// reports, not an approximation.
#[test]
fn corrupt_store_answers_with_exact_loss_accounting() {
    let dir = tmp_catalog("salvage");
    // chunk finely so the trace spans many chunks and one lost chunk is
    // a small, precisely-accounted slice of the answer
    let report = profile(&ProfileConfig::mlp_case_study(3)).unwrap();
    let mut encoded = Vec::new();
    pinpoint::store::write_store_chunked(&report.trace, &mut encoded, 64).unwrap();
    let store = dir.join("hurt.ptrc");
    std::fs::write(&store, &encoded).unwrap();

    // flip one payload byte inside chunk 1 so its CRC check fails
    let chunk1_off = {
        let reader = StoreReader::open(&store).unwrap();
        assert!(reader.num_chunks() > 2, "need several chunks");
        reader.footer().chunks[1].offset
    };
    let mut bytes = std::fs::read(&store).unwrap();
    bytes[chunk1_off as usize + 1] ^= 0x40;
    std::fs::write(&store, &bytes).unwrap();

    // offline truth: the shared salvage reader's loss accounting
    let reader = SharedStoreReader::open_with_policy(&store, ReadPolicy::Salvage).unwrap();
    let pred = Predicate::any().with_kind(EventKind::Malloc);
    let want = reader.query(&pred, 1).unwrap();
    assert!(want.stats.chunks_skipped >= 1, "corruption must be seen");
    assert!(want.stats.events_lost > 0);

    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let (status, head, body) = post(
        addr,
        "/stores/hurt/query",
        "{\"kind\":\"malloc\",\"max\":20}",
    );
    assert_eq!(status, 200, "salvage answers, it does not error: {body}");
    assert_eq!(
        header_u64(&head, "X-Pinpoint-Chunks-Skipped"),
        want.stats.chunks_skipped as u64
    );
    assert_eq!(
        header_u64(&head, "X-Pinpoint-Events-Lost"),
        want.stats.events_lost
    );
    assert_eq!(body, pinpoint::analysis::query_json(&want, 20));

    // report over the same damaged store: 200 with the loss in headers
    let (status, head, _) = post(addr, "/stores/hurt/report", "");
    assert_eq!(status, 200);
    assert!(header_u64(&head, "X-Pinpoint-Events-Lost") > 0);

    // the result cache must carry the loss headers on a hit, too
    let (status, head, _) = post(addr, "/stores/hurt/report", "");
    assert_eq!(status, 200);
    assert!(header_u64(&head, "X-Pinpoint-Events-Lost") > 0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A repeated query is served from the result cache — and the cached
/// bytes are identical to the cold ones, at one worker and at four.
#[test]
fn result_cache_hits_are_byte_identical_across_worker_counts() {
    let dir = tmp_catalog("result-hit");
    mlp_store(&dir, "mlp");
    let mut bodies = Vec::new();
    for workers in [1usize, 4] {
        let handle = start(ServeConfig {
            catalog_dir: dir.clone(),
            workers,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let q = "{\"kind\":\"malloc\",\"max\":9}";
        let (status, cold_head, cold) = post(addr, "/stores/mlp/query", q);
        assert_eq!(status, 200);
        // spelled differently, same canonical params → same cache entry
        let (status, warm_head, warm) =
            post(addr, "/stores/mlp/query", "{\"max\":9,\"kind\":\"malloc\"}");
        assert_eq!(status, 200);
        assert_eq!(cold, warm, "hit bytes diverge at {workers} workers");
        assert_eq!(header(&cold_head, "ETag"), header(&warm_head, "ETag"));
        let (_, _, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("\"result_hits\":1"), "{metrics}");
        assert!(metrics.contains("\"result_misses\":1"), "{metrics}");
        bodies.push(cold);
        handle.shutdown();
    }
    assert_eq!(bodies[0], bodies[1], "bytes diverge across worker counts");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under a result-cache budget too small for two entries, distinct
/// queries evict each other — visibly in `/metrics`, and without ever
/// changing response bytes.
#[test]
fn result_cache_evicts_under_a_tiny_budget() {
    let dir = tmp_catalog("result-evict");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        result_cache_bytes: 600, // roughly one small rendered body
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let (_, _, first) = post(addr, "/stores/mlp/query", "{\"kind\":\"free\",\"max\":1}");
    for max in 2..6 {
        let (status, _, _) = post(
            addr,
            "/stores/mlp/query",
            &format!("{{\"kind\":\"free\",\"max\":{max}}}"),
        );
        assert_eq!(status, 200);
    }
    let (_, _, again) = post(addr, "/stores/mlp/query", "{\"kind\":\"free\",\"max\":1}");
    assert_eq!(first, again, "eviction must never change bytes");
    let (_, _, metrics) = get(addr, "/metrics");
    let evictions: u64 = metrics
        .split("\"result_evictions\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .unwrap()
        .parse()
        .unwrap();
    assert!(evictions >= 1, "{metrics}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replacing a `.ptrc` in place (same name, new bytes) is detected on the
/// next access: the store reopens, both cache tiers invalidate, and the
/// response reflects the new bytes — never a stale cached answer.
#[test]
fn replaced_store_serves_fresh_bytes_and_invalidates_caches() {
    let dir = tmp_catalog("replace");
    let path = mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let q = "{\"kind\":\"malloc\",\"max\":50}";
    let (status, old_head, old_body) = post(addr, "/stores/mlp/query", q);
    assert_eq!(status, 200);
    // warm the result cache so staleness would be easy to get wrong
    let (_, _, warm) = post(addr, "/stores/mlp/query", q);
    assert_eq!(old_body, warm);

    // replace in place with a different trace (fewer epochs → different
    // length, so the generation fingerprint changes even on coarse mtime)
    let report = profile(&ProfileConfig::mlp_case_study(2)).unwrap();
    write_store_file(&report.trace, &path).unwrap();

    let (status, new_head, new_body) = post(addr, "/stores/mlp/query", q);
    assert_eq!(status, 200);
    assert_ne!(old_body, new_body, "must not serve the stale store");
    assert_ne!(header(&old_head, "ETag"), header(&new_head, "ETag"));
    // fresh bytes match the offline reader on the new file
    let reader = SharedStoreReader::open_with_policy(&path, ReadPolicy::Salvage).unwrap();
    let want = reader
        .query(&Predicate::any().with_kind(EventKind::Malloc), 1)
        .unwrap();
    assert_eq!(new_body, pinpoint::analysis::query_json(&want, 50));

    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("\"store_reopens\":1"), "{metrics}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Conditional requests: a matching `If-None-Match` gets a body-less
/// `304 Not Modified`; after the store is replaced the old tag no longer
/// matches and the same request gets a full `200` with a new tag.
#[test]
fn conditional_requests_flow_304_then_200_after_replacement() {
    let dir = tmp_catalog("etag");
    let path = mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let q = "{\"kind\":\"write\",\"max\":3}";
    let (status, head, body) = post(addr, "/stores/mlp/query", q);
    assert_eq!(status, 200);
    assert!(!body.is_empty());
    let tag = header(&head, "ETag").to_string();

    let inm = format!("If-None-Match: {tag}\r\n");
    let (status, head, body) = post_with(addr, "/stores/mlp/query", q, &inm);
    assert_eq!(status, 304, "matching tag revalidates");
    assert!(body.is_empty(), "304 carries no body: {body:?}");
    assert_eq!(header(&head, "ETag"), tag, "304 echoes the tag");

    // a non-matching tag is a plain 200
    let (status, _, _) = post_with(addr, "/stores/mlp/query", q, "If-None-Match: \"stale\"\r\n");
    assert_eq!(status, 200);

    // replace the store: the old tag must stop matching
    let report = profile(&ProfileConfig::mlp_case_study(2)).unwrap();
    write_store_file(&report.trace, &path).unwrap();
    let (status, head, body) = post_with(addr, "/stores/mlp/query", q, &inm);
    assert_eq!(status, 200, "old tag must not validate a replaced store");
    assert!(!body.is_empty());
    assert_ne!(header(&head, "ETag"), tag);

    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("\"not_modified\":1"), "{metrics}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kept-alive session gets byte-identical bodies to one-shot
/// connections, across both cold and cached responses.
#[test]
fn keep_alive_session_matches_one_shot_bytes() {
    let dir = tmp_catalog("keepalive");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let q = "{\"kind\":\"malloc\",\"max\":11}";
    let (_, _, want) = post(addr, "/stores/mlp/query", q);

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let req = format!(
        "POST /stores/mlp/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{q}",
        q.len()
    );
    for i in 0..4 {
        s.write_all(req.as_bytes()).unwrap();
        let (status, head, got) = read_one_response(&mut s);
        assert_eq!(status, 200, "request {i}");
        assert_eq!(header(&head, "Connection"), "keep-alive", "{head}");
        assert_eq!(got, want, "kept-alive bytes diverge on request {i}");
    }
    // the client can still end the session explicitly
    let bye = format!(
        "POST /stores/mlp/query HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{q}",
        q.len()
    );
    s.write_all(bye.as_bytes()).unwrap();
    let (status, head, got) = read_one_response(&mut s);
    assert_eq!(status, 200);
    assert_eq!(header(&head, "Connection"), "close", "{head}");
    assert_eq!(got, want);
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after Connection: close");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store deleted out from under the catalog is a 404, never a panic or
/// a hang; a name that was never there is the same 404.
#[test]
fn deleted_store_is_a_404_not_a_panic() {
    let dir = tmp_catalog("deleted");
    let store = mlp_store(&dir, "gone");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // the directory listing sees it, but it vanishes before first open
    let (status, _, body) = get(addr, "/stores");
    assert_eq!(status, 200);
    assert!(body.contains("\"gone\""), "{body}");
    std::fs::remove_file(&store).unwrap();
    let (status, _, _) = get(addr, "/stores/gone/info");
    assert_eq!(status, 404);
    let (status, _, _) = post(addr, "/stores/never/query", "{}");
    assert_eq!(status, 404);

    // the server is still healthy afterwards
    let (status, _, _) = get(addr, "/metrics");
    assert_eq!(status, 200);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// With one worker and a one-deep queue, the third concurrent connection
/// is shed with `503 Retry-After: 1` — deterministically, and without
/// disturbing the two admitted requests.
#[test]
fn overload_sheds_a_deterministic_503() {
    let dir = tmp_catalog("shed");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // c1 pins the single worker: it sends half a request and stalls
    let mut c1 = TcpStream::connect(addr).unwrap();
    c1.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c1.write_all(b"GET /stores HTTP/1.1\r\nConnection: close\r\nHost:")
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // c2 fills the one queue slot
    let mut c2 = TcpStream::connect(addr).unwrap();
    c2.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c2.write_all(b"GET /stores HTTP/1.1\r\nConnection: close\r\nHost: x\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // c3 finds the queue full and is refused at the door
    let mut c3 = TcpStream::connect(addr).unwrap();
    c3.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut refusal = Vec::new();
    c3.read_to_end(&mut refusal).unwrap();
    let refusal = String::from_utf8(refusal).unwrap();
    assert!(refusal.starts_with("HTTP/1.1 503"), "{refusal}");
    assert!(refusal.contains("Retry-After: 1"), "{refusal}");

    // un-stall c1: both admitted requests complete normally
    c1.write_all(b" x\r\n\r\n").unwrap();
    for c in [&mut c1, &mut c2] {
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("\"mlp\""), "{text}");
    }

    // the shed is counted
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("\"shed\":1"), "{body}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Retry-After` scales with queue depth: a four-deep backlog draining
/// through one worker backs the shed client off for four seconds.
#[test]
fn deeper_queue_backs_shed_clients_off_longer() {
    let dir = tmp_catalog("shed-deep");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 1,
        queue_cap: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // pin the single worker with a half-sent request
    let mut pin = TcpStream::connect(addr).unwrap();
    pin.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    pin.write_all(b"GET /stores HTTP/1.1\r\nConnection: close\r\nHost:")
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // fill all four queue slots
    let mut queued = Vec::new();
    for _ in 0..4 {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        c.write_all(b"GET /stores HTTP/1.1\r\nConnection: close\r\nHost: x\r\n\r\n")
            .unwrap();
        queued.push(c);
    }
    std::thread::sleep(Duration::from_millis(300));

    // the next connection is shed with the depth-derived backoff
    let mut shed = TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut refusal = Vec::new();
    shed.read_to_end(&mut refusal).unwrap();
    let refusal = String::from_utf8(refusal).unwrap();
    assert!(refusal.starts_with("HTTP/1.1 503"), "{refusal}");
    assert!(
        refusal.contains("Retry-After: 4"),
        "ceil(4 / 1) = 4: {refusal}"
    );

    // un-stall the pin; every admitted request still completes
    pin.write_all(b" x\r\n\r\n").unwrap();
    for c in std::iter::once(&mut pin).chain(queued.iter_mut()) {
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CLI `serve` subcommand end to end: spawn the daemon as a child
/// process, parse the bound port from its banner, query it over TCP, and
/// stop it cleanly through the token-gated shutdown endpoint.
#[test]
fn cli_serve_round_trip() {
    let tool = bin("pinpoint-trace-tool");
    if !tool.exists() {
        eprintln!("skipping: {tool:?} not built (run with --workspace)");
        return;
    }
    let dir = tmp_catalog("cli-serve");
    mlp_store(&dir, "mlp");
    let mut child = Command::new(&tool)
        .arg("serve")
        .args(["--catalog"])
        .arg(&dir)
        .args(["--addr", "127.0.0.1:0", "--shutdown-token", "tok"])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();

    // the first stdout line carries the bound address
    let mut out = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    out.read_line(&mut banner).unwrap();
    let addr: SocketAddr = banner
        .split_once("http://")
        .and_then(|(_, rest)| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .parse()
        .unwrap();

    let (status, _, body) = get(addr, "/stores");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"stores\":[\"mlp\"]}");

    // a kept-alive session against the real process, ETag reuse included
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let q = "{\"kind\":\"malloc\",\"max\":2}";
    let req = format!(
        "POST /stores/mlp/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{q}",
        q.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let (status, head, body) = read_one_response(&mut s);
    assert_eq!(status, 200);
    assert!(!body.is_empty());
    let tag = header(&head, "ETag").to_string();
    let cond = format!(
        "POST /stores/mlp/query HTTP/1.1\r\nHost: x\r\nIf-None-Match: {tag}\r\n\
         Content-Length: {}\r\n\r\n{q}",
        q.len()
    );
    s.write_all(cond.as_bytes()).unwrap();
    let (status, _, body) = read_one_response(&mut s);
    assert_eq!(status, 304, "same connection, same tag → 304");
    assert!(body.is_empty());
    drop(s);

    // shutdown requires the token, then the process exits cleanly
    let (status, _, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 403);
    let (status, _, _) = roundtrip(
        addr,
        "POST /shutdown HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
         X-Pinpoint-Token: tok\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 204);
    let status = child.wait().unwrap();
    assert!(status.success(), "serve must exit cleanly: {status:?}");
    let mut rest = String::new();
    out.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("shutdown complete"), "{rest:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/metrics` and `/debug/spans` are dynamic diagnostics: both must
/// carry `Cache-Control: no-store` and a conditional GET against
/// `/metrics` must never be answered `304` — regression guard for the
/// obs endpoints leaking into the ETag/result-cache machinery.
#[test]
fn observability_endpoints_are_never_cached() {
    let dir = tmp_catalog("obs-nostore");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let (status, head, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(header(&head, "Cache-Control"), "no-store");
    assert!(pinpoint::trace::json::parse(&body).is_ok(), "{body}");

    // a conditional request must get fresh bytes, whatever tag it sends
    let (status, head, body) = roundtrip(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
         If-None-Match: \"0-0\"\r\n\r\n",
    );
    assert_eq!(status, 200, "conditional GET /metrics must never 304");
    assert_eq!(header(&head, "Cache-Control"), "no-store");
    assert!(body.contains("\"accepted\""), "{body}");

    let (status, head, body) = get(addr, "/debug/spans");
    assert_eq!(status, 200);
    assert_eq!(header(&head, "Cache-Control"), "no-store");
    assert!(pinpoint::trace::json::parse(&body).is_ok(), "{body}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `/metrics` latency section: per-endpoint log2-bucketed
/// histograms with exact-rank percentiles, appended after every
/// pre-existing flat counter key (byte-compatible prefix).
#[test]
fn metrics_latency_histograms_cover_endpoints() {
    let dir = tmp_catalog("obs-latency");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let (status, _, _) = post(addr, "/stores/mlp/report", "");
    assert_eq!(status, 200);
    let (status, _, _) = post(addr, "/stores/mlp/query", "{\"kind\":\"malloc\",\"max\":3}");
    assert_eq!(status, 200);

    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    // the flat counters stay a byte-compatible prefix before `latency`
    let lat_pos = body.find("\"latency\":").expect("latency section");
    for key in [
        "\"accepted\":",
        "\"queries\":1",
        "\"reports\":1",
        "\"result_entries\":",
    ] {
        let pos = body
            .find(key)
            .unwrap_or_else(|| panic!("missing {key} in {body}"));
        assert!(pos < lat_pos, "{key} must precede the latency section");
    }
    let parsed = pinpoint::trace::json::parse(&body).unwrap();
    let lat = parsed.get("latency").expect("latency object");
    for endpoint in ["query", "report"] {
        let h = lat
            .get(endpoint)
            .unwrap_or_else(|| panic!("missing {endpoint}"));
        let count = h.get("count").and_then(|j| j.as_u64()).unwrap();
        assert_eq!(count, 1, "{endpoint} histogram count");
        let p50 = h.get("p50_ns").and_then(|j| j.as_u64()).unwrap();
        let p99 = h.get("p99_ns").and_then(|j| j.as_u64()).unwrap();
        assert!(p50 > 0 && p99 >= p50, "{endpoint}: p50 {p50}, p99 {p99}");
        assert!(h.get("mean_ns").and_then(|j| j.as_u64()).unwrap() > 0);
    }
    // the /metrics GETs themselves land in the `other` histogram
    assert!(lat.get("other").is_some());

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every query/report response carries an `X-Pinpoint-Timing` header
/// with per-stage durations — on the fresh fold path, on a result-cache
/// hit, and on a conditional `304`.
#[test]
fn timing_header_reports_stages() {
    let dir = tmp_catalog("obs-timing");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // fresh fold: all stages present
    let (status, head, _) = post(addr, "/stores/mlp/report", "");
    assert_eq!(status, 200);
    let timing = header(&head, "X-Pinpoint-Timing");
    for stage in [
        "parse;dur=",
        "lookup;dur=",
        "fold;dur=",
        "render;dur=",
        "total;dur=",
    ] {
        assert!(timing.contains(stage), "missing {stage} in {timing}");
    }

    // result-cache hit: no fold/render, but still parsed and looked up
    let (status, head, _) = post(addr, "/stores/mlp/report", "");
    assert_eq!(status, 200);
    let timing = header(&head, "X-Pinpoint-Timing");
    assert!(
        timing.contains("lookup;dur=") && timing.contains("total;dur="),
        "{timing}"
    );
    assert!(
        !timing.contains("fold;dur="),
        "cache hit must skip the fold: {timing}"
    );

    // conditional 304: same shape as the cache hit
    let (_, head, _) = post(addr, "/stores/mlp/report", "");
    let tag = header(&head, "ETag").to_string();
    let (status, head, _) = post_with(
        addr,
        "/stores/mlp/report",
        "",
        &format!("If-None-Match: {tag}\r\n"),
    );
    assert_eq!(status, 304);
    let timing = header(&head, "X-Pinpoint-Timing");
    assert!(
        timing.contains("lookup;dur=") && timing.contains("total;dur="),
        "{timing}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Registry counters stay exact under the concurrent worker pool: with
/// many client threads hammering the daemon at once, the flat counters
/// must add up request-for-request — no lost increments, no
/// double-counting across the fan-out.
#[test]
fn counters_stay_exact_under_concurrent_load() {
    let dir = tmp_catalog("obs-counters");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 4,
        queue_cap: 256,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // warm the caches so the load phase is fast
    let (status, _, _) = post(addr, "/stores/mlp/report", "");
    assert_eq!(status, 200);

    let clients = 8usize;
    let per_client = 12usize;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                for i in 0..per_client {
                    let (status, _, _) = if (c + i) % 3 == 0 {
                        post(addr, "/stores/mlp/query", "{\"kind\":\"malloc\",\"max\":2}")
                    } else {
                        post(addr, "/stores/mlp/report", "")
                    };
                    assert_eq!(status, 200);
                }
            });
        }
    });

    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metric = |key: &str| -> u64 {
        let tag = format!("\"{key}\":");
        let rest = &body[body.find(&tag).expect("metric present") + tag.len()..];
        rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
    };
    let total = clients * per_client;
    let queries = (0..clients)
        .flat_map(|c| (0..per_client).map(move |i| (c + i) % 3))
        .filter(|&r| r == 0)
        .count();
    // warm-up + load + this /metrics request, each over its own connection
    assert_eq!(metric("accepted"), total as u64 + 2);
    assert_eq!(metric("shed"), 0);
    assert_eq!(metric("queries"), queries as u64);
    assert_eq!(metric("reports"), (total - queries) as u64 + 1);
    // every finished response (the in-flight /metrics one is not yet
    // tallied when its own body renders)
    assert_eq!(metric("ok"), total as u64 + 1);
    assert_eq!(metric("client_error"), 0);
    assert_eq!(metric("server_error"), 0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/debug/spans` replays recent request span trees: each entry is a
/// `serve.request` root with its stage children, and a fresh report
/// request shows the full parse → lookup → fold → render → write chain.
#[test]
fn debug_spans_replays_request_trees() {
    let dir = tmp_catalog("obs-spans");
    mlp_store(&dir, "mlp");
    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    // a fresh report (full pipeline) and a query
    let (status, _, _) = post(addr, "/stores/mlp/report", "");
    assert_eq!(status, 200);
    let (status, _, _) = post(addr, "/stores/mlp/query", "{\"kind\":\"malloc\",\"max\":2}");
    assert_eq!(status, 200);

    let (status, _, body) = get(addr, "/debug/spans");
    assert_eq!(status, 200);
    let parsed = pinpoint::trace::json::parse(&body).unwrap_or_else(|e| panic!("{e}: {body}"));
    let requests = parsed
        .get("requests")
        .and_then(|j| j.as_arr())
        .expect("requests array");
    // the in-flight /debug/spans request is still open, so it never
    // lists itself — but both finished requests above must appear
    assert!(requests.len() >= 2, "{body}");
    let mut saw_full_chain = false;
    for req in requests {
        let spans = req.get("spans").and_then(|j| j.as_arr()).expect("spans");
        assert!(!spans.is_empty());
        assert_eq!(
            spans[0].get("name").and_then(|j| j.as_str()),
            Some("serve.request"),
            "{body}"
        );
        assert_eq!(spans[0].get("depth").and_then(|j| j.as_u64()), Some(0));
        assert!(req.get("id").and_then(|j| j.as_u64()).is_some());
        assert!(req.get("dur_ns").and_then(|j| j.as_u64()).is_some());
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|s| s.get("name").and_then(|j| j.as_str()))
            .collect();
        if [
            "serve.parse",
            "serve.lookup",
            "serve.fold",
            "serve.render",
            "serve.write",
        ]
        .iter()
        .all(|n| names.contains(n))
        {
            saw_full_chain = true;
        }
    }
    assert!(
        saw_full_chain,
        "a fresh report must replay its full stage chain: {body}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
