//! Corruption-matrix tests for the `.ptrc` store: truncations at every
//! chunk boundary, seeded bit-flip fuzz, pure-garbage inputs, and the
//! writer's fault paths — all driven by the deterministic
//! `pinpoint::store::fault` harness, no OS randomness and no wall clock.
//!
//! The invariants under test, from the robustness issue:
//!
//! 1. **No input byte sequence panics the reader** — every failure is a
//!    typed `StoreError` under `Strict`.
//! 2. **Salvage recovers exactly the CRC-intact chunks**, and analysis
//!    over a salvaged store is bit-identical — at any thread count — to
//!    the same analysis over a store containing only those chunks.
//! 3. The writer's crash-safety holds under injected faults: a failed
//!    finish leaves no destination file and no temp litter; transient
//!    write errors are absorbed by the seeded retry policy.

use pinpoint::core::report::TraceReport;
use pinpoint::core::{profile, ProfileConfig};
use pinpoint::data::DatasetSpec;
use pinpoint::models::{Architecture, ResNetDepth};
use pinpoint::store::fault::{flip_bits, FaultKind, FaultyIo};
use pinpoint::store::{
    write_store_chunked, write_store_chunked_v1, write_store_chunked_v2, ChunkMeta, Predicate,
    ReadPolicy, RetryPolicy, StoreReader, StoreWriter,
};
use pinpoint::tensor::rng::Rng64;
use pinpoint::trace::{MemEvent, Trace, TraceSink};
use pinpoint_analysis::OutlierCriteria;
use std::io::Cursor;
use std::sync::OnceLock;

/// Events per chunk for the fixture store — small, so the truncation
/// matrix has many boundaries to probe.
const CHUNK_EVENTS: usize = 256;

const HEADER_LEN: usize = 5;
const CHUNK_HEADER_LEN: usize = 12;

fn resnet18_trace() -> &'static Trace {
    static TRACE: OnceLock<Trace> = OnceLock::new();
    TRACE.get_or_init(|| {
        let cfg = ProfileConfig::breakdown_sweep(
            Architecture::ResNet(ResNetDepth::R18),
            DatasetSpec::cifar100(),
            8,
        );
        profile(&cfg).expect("resnet-18 profile").trace
    })
}

fn fixture_store() -> &'static Vec<u8> {
    static STORE: OnceLock<Vec<u8>> = OnceLock::new();
    STORE.get_or_init(|| {
        let mut bytes = Vec::new();
        write_store_chunked(resnet18_trace(), &mut bytes, CHUNK_EVENTS).unwrap();
        bytes
    })
}

/// The pristine chunk index, and each chunk's decoded events, for ground
/// truth against salvage results.
fn fixture_chunks() -> &'static (Vec<ChunkMeta>, Vec<Vec<MemEvent>>) {
    static CHUNKS: OnceLock<(Vec<ChunkMeta>, Vec<Vec<MemEvent>>)> = OnceLock::new();
    CHUNKS.get_or_init(|| {
        let mut r = StoreReader::new(Cursor::new(fixture_store().clone())).unwrap();
        let metas = r.footer().chunks.clone();
        let events = (0..metas.len())
            .map(|i| r.decode_chunk_events(i).unwrap())
            .collect();
        (metas, events)
    })
}

/// Events of every chunk satisfying `keep`, concatenated in chunk order —
/// the exact stream a correct salvage must produce.
fn surviving_events(keep: impl Fn(usize, &ChunkMeta) -> bool) -> Vec<MemEvent> {
    let (metas, events) = fixture_chunks();
    metas
        .iter()
        .enumerate()
        .filter(|(i, m)| keep(*i, m))
        .flat_map(|(i, _)| events[i].iter().cloned())
        .collect()
}

#[test]
fn truncation_at_every_chunk_boundary_salvages_the_contained_prefix() {
    let bytes = fixture_store();
    let (metas, _) = fixture_chunks();
    assert!(
        metas.len() >= 8,
        "fixture too small: {} chunks",
        metas.len()
    );

    for (ci, meta) in metas.iter().enumerate() {
        let boundary = (meta.offset + meta.byte_len) as usize;
        for delta in [-3i64, -1, 0, 1, 3] {
            let cut = boundary.saturating_add_signed(delta as isize);
            if cut >= bytes.len() {
                continue;
            }
            let maimed = bytes[..cut].to_vec();

            // strict: typed error, never a panic (the footer is gone)
            assert!(
                StoreReader::new(Cursor::new(maimed.clone())).is_err(),
                "chunk {ci} cut {cut}: strict open of a truncated store must fail"
            );

            // salvage: exactly the fully-contained chunks survive
            let mut r = StoreReader::new_with_policy(Cursor::new(maimed), ReadPolicy::Salvage)
                .unwrap_or_else(|e| panic!("chunk {ci} cut {cut}: salvage open failed: {e}"));
            let s = r.salvage_summary().expect("footer was cut off").clone();
            let expect = surviving_events(|_, m| (m.offset + m.byte_len) as usize <= cut);
            assert_eq!(
                s.events_recovered,
                expect.len() as u64,
                "chunk {ci} cut {cut} (delta {delta}): wrong recovery count"
            );
            let q = r.query(&Predicate::any(), 1).unwrap();
            assert_eq!(
                q.events, expect,
                "chunk {ci} cut {cut}: salvaged events are not the contained prefix"
            );
        }
    }
}

#[test]
fn salvaged_analysis_is_bit_identical_to_the_surviving_chunk_store() {
    let bytes = fixture_store();
    let (metas, _) = fixture_chunks();
    // probe a few representative cuts: early, middle, late
    for ci in [1, metas.len() / 2, metas.len() - 2] {
        let cut = (metas[ci].offset + metas[ci].byte_len) as usize + 1;
        let maimed = bytes[..cut].to_vec();
        let mut salvaged =
            StoreReader::new_with_policy(Cursor::new(maimed), ReadPolicy::Salvage).unwrap();

        // rebuild a pristine store holding only the surviving chunks
        let mut rebuilt = StoreWriter::with_chunk_events(Vec::new(), CHUNK_EVENTS).unwrap();
        salvaged.scrub_into(&mut rebuilt).unwrap();
        rebuilt.finish().unwrap();
        let mut clean = StoreReader::new(Cursor::new(rebuilt.into_inner())).unwrap();

        let criteria = OutlierCriteria::paper_fig4();
        let base = TraceReport::from_store(&mut clean, criteria, 1).unwrap();
        for threads in [1, 4] {
            let d = TraceReport::from_store(&mut salvaged, criteria, threads).unwrap();
            assert_eq!(d.ati, base.ati, "cut after chunk {ci}, threads {threads}");
            assert_eq!(d.peak, base.peak, "cut after chunk {ci}, threads {threads}");
            assert_eq!(
                d.gantt, base.gantt,
                "cut after chunk {ci}, threads {threads}"
            );
            assert_eq!(
                d.outliers, base.outliers,
                "cut after chunk {ci}, threads {threads}"
            );
            assert_eq!(
                d.breakdown.peak_bytes, base.breakdown.peak_bytes,
                "cut after chunk {ci}, threads {threads}"
            );
        }
    }
}

#[test]
fn bit_flip_fuzz_salvages_exactly_the_intact_chunks() {
    let bytes = fixture_store();
    let (metas, _) = fixture_chunks();
    let footer_start = (metas.last().unwrap().offset + metas.last().unwrap().byte_len) as usize;

    for seed in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x0BAD_F00D);
        let flips = rng.gen_range_usize(1, 9);
        let mut maimed = bytes.clone();
        let hit = flip_bits(&mut maimed, seed, flips, HEADER_LEN);

        // strict must never panic: either a typed error, or — when every
        // flip landed outside the payloads and footer (e.g. in a chunk
        // record header, which only the rescan path reads) — a clean,
        // exact read
        // (an `Err` here is typed by construction; no panic is the assertion)
        if let Ok(mut r) = StoreReader::new(Cursor::new(maimed.clone())) {
            if let Ok(q) = r.query(&Predicate::any(), 2) {
                assert_eq!(
                    q.events,
                    surviving_events(|_, _| true),
                    "seed {seed}: strict read succeeded but events differ"
                );
            }
        }

        let payload_hit = |m: &ChunkMeta| {
            hit.iter()
                .any(|&o| (o as u64) >= m.offset && (o as u64) < m.offset + m.byte_len)
        };
        let record_hit = |m: &ChunkMeta| {
            hit.iter().any(|&o| {
                (o as u64) >= m.offset - CHUNK_HEADER_LEN as u64
                    && (o as u64) < m.offset + m.byte_len
            })
        };
        let footer_hit = hit.iter().any(|&o| o >= footer_start);

        let mut r = StoreReader::new_with_policy(Cursor::new(maimed), ReadPolicy::Salvage)
            .unwrap_or_else(|e| panic!("seed {seed}: salvage open failed: {e}"));
        if footer_hit {
            // footer/trailer damaged: the index is rebuilt by rescan, and
            // a chunk survives iff its whole record (header + payload) is
            // untouched
            assert!(
                r.salvage_summary().is_some(),
                "seed {seed}: footer was hit, expected a rescan"
            );
            let expect = surviving_events(|_, m| !record_hit(m));
            let q = r.query(&Predicate::any(), 2).unwrap();
            assert_eq!(q.events, expect, "seed {seed}: rescan salvage mismatch");
        } else {
            // footer intact: reads go through the index (record headers
            // are never consulted), so a chunk survives iff its payload
            // is untouched
            assert!(
                r.salvage_summary().is_none(),
                "seed {seed}: footer intact, no rescan expected"
            );
            let expect = surviving_events(|_, m| !payload_hit(m));
            let damaged = metas.iter().filter(|m| payload_hit(m)).count();
            let q = r.query(&Predicate::any(), 2).unwrap();
            assert_eq!(q.events, expect, "seed {seed}: salvage mismatch");
            assert_eq!(
                q.stats.chunks_skipped, damaged,
                "seed {seed}: wrong skip accounting"
            );
            assert_eq!(
                q.stats.events_lost,
                metas
                    .iter()
                    .filter(|m| payload_hit(m))
                    .map(|m| m.count)
                    .sum::<u64>(),
                "seed {seed}: wrong loss accounting"
            );
        }
    }
}

#[test]
fn arbitrary_garbage_never_panics_the_reader() {
    for seed in 0..32u64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let len = rng.gen_range_usize(0, 2000);
        let mut garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        for policy in [ReadPolicy::Strict, ReadPolicy::Salvage] {
            // pure noise
            let _ = StoreReader::new_with_policy(Cursor::new(garbage.clone()), policy)
                .map(|mut r| r.read_trace());
            // noise wearing a valid header, to reach the deeper decoders
            // of every supported format version
            if garbage.len() >= HEADER_LEN {
                garbage[..4].copy_from_slice(b"PTRC");
                for version in [3, 2, 1] {
                    garbage[4] = version;
                    let _ = StoreReader::new_with_policy(Cursor::new(garbage.clone()), policy)
                        .map(|mut r| r.read_trace());
                }
            }
        }
    }
}

#[test]
fn v2_truncation_salvages_the_contained_prefix() {
    // the main matrix runs on the current (v3) fixture; this keeps the
    // legacy v2 read path under the same truncation discipline
    let t = resnet18_trace();
    let mut bytes = Vec::new();
    write_store_chunked_v2(t, &mut bytes, CHUNK_EVENTS).unwrap();
    let pristine = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
    let metas = pristine.footer().chunks.clone();
    let ci = metas.len() / 2;
    let cut = (metas[ci].offset + metas[ci].byte_len) as usize + 1;
    let mut r =
        StoreReader::new_with_policy(Cursor::new(bytes[..cut].to_vec()), ReadPolicy::Salvage)
            .unwrap();
    assert_eq!(r.salvage_summary().unwrap().chunks_recovered, ci + 1);
    let back = r.read_trace().unwrap();
    assert_eq!(
        back.events(),
        &t.events()[..((ci + 1) * CHUNK_EVENTS).min(t.events().len())]
    );
}

#[test]
fn v1_truncation_salvages_the_cleanly_decoding_prefix() {
    let t = resnet18_trace();
    let mut bytes = Vec::new();
    write_store_chunked_v1(t, &mut bytes, CHUNK_EVENTS).unwrap();
    let pristine = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
    let metas = pristine.footer().chunks.clone();
    let ci = metas.len() / 2;
    let cut = (metas[ci].offset + metas[ci].byte_len / 2) as usize;
    let mut r =
        StoreReader::new_with_policy(Cursor::new(bytes[..cut].to_vec()), ReadPolicy::Salvage)
            .unwrap();
    assert_eq!(r.salvage_summary().unwrap().chunks_recovered, ci);
    let back = r.read_trace().unwrap();
    assert_eq!(back.events(), &t.events()[..ci * CHUNK_EVENTS]);
}

#[test]
fn injected_transient_write_errors_are_absorbed_by_the_retry_policy() {
    let t = resnet18_trace();
    let faulty = FaultyIo::new(Cursor::new(Vec::new()), 3)
        .fail_op(1, FaultKind::Transient)
        .fail_op(5, FaultKind::Transient)
        .fail_op(9, FaultKind::Transient);
    let mut w = StoreWriter::with_chunk_events(faulty, CHUNK_EVENTS).unwrap();
    w.set_retry_policy(RetryPolicy {
        max_attempts: 4,
        base_backoff_us: 1,
        seed: 7,
    });
    w.set_sleeper(Box::new(|_| {})); // deterministic: no wall clock
    for l in t.labels() {
        w.intern_label(l);
    }
    for e in t.events() {
        w.record_event(e.clone());
    }
    w.finish().unwrap();
    let bytes = w.into_inner().into_inner().into_inner();
    let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
    assert!(r.verify_chunks().unwrap().is_empty());
    assert_eq!(r.read_trace().unwrap().events(), t.events());
}

#[test]
fn failed_finish_leaves_no_destination_and_no_temp_litter() {
    let t = resnet18_trace();
    let dir = std::env::temp_dir();
    let dest = dir.join("pinpoint_corruption_atomic.ptrc");
    let tmp = dir.join("pinpoint_corruption_atomic.ptrc.tmp");
    let _ = std::fs::remove_file(&dest);
    let _ = std::fs::remove_file(&tmp);

    // a permanent device fault late in the stream: the error is deferred
    // into finish(), which must surface it AND clean up the temp file
    let file = std::fs::File::create(&tmp).unwrap();
    let faulty = FaultyIo::new(file, 11).fail_op(6, FaultKind::Permanent);
    let mut w = StoreWriter::with_chunk_events(faulty, CHUNK_EVENTS).unwrap();
    w.set_atomic_finalize(tmp.clone(), dest.clone());
    for e in t.events() {
        w.record_event(e.clone());
    }
    let err = w.finish().expect_err("the injected fault must surface");
    assert!(err.to_string().contains("injected permanent fault"));
    assert!(!dest.exists(), "failed finish must not produce {dest:?}");
    assert!(!tmp.exists(), "failed finish must remove {tmp:?}");

    // the same pipeline with no fault lands the file atomically
    let file = std::fs::File::create(&tmp).unwrap();
    let mut w = StoreWriter::with_chunk_events(FaultyIo::new(file, 11), CHUNK_EVENTS).unwrap();
    w.set_atomic_finalize(tmp.clone(), dest.clone());
    for l in t.labels() {
        w.intern_label(l);
    }
    for e in t.events() {
        w.record_event(e.clone());
    }
    w.finish().unwrap();
    assert!(
        dest.exists() && !tmp.exists(),
        "finish renames tmp onto dest"
    );
    let mut r = StoreReader::open(&dest).unwrap();
    assert_eq!(r.read_trace().unwrap().events(), t.events());
    let _ = std::fs::remove_file(&dest);
}
