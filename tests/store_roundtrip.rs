//! Cross-format integration tests: the `.ptrc` store against JSON and the
//! in-memory trace, plus the acceptance criteria for the chunked layout
//! (pushdown skips chunks; the binary format is much smaller than JSON).

use pinpoint::analysis::{
    ati_from_store, breakdown_from_store, gantt_from_store, gantt_rects, outliers_from_store, sift,
    AtiDataset, BreakdownRow, OutlierCriteria,
};
use pinpoint::core::{profile, ProfileConfig};
use pinpoint::store::{write_store_chunked, Predicate, StoreReader};
use pinpoint::tensor::rng::Rng64;
use pinpoint::trace::export::{json_string, read_json, write_json};
use pinpoint::trace::{BlockId, EventKind, Marker, MemEvent, MemoryKind, Trace};
use std::io::Cursor;

/// Generates a pseudo-random trace: arbitrary event mixes, shared and
/// fresh blocks, op labels, markers — everything the wire formats carry.
fn arbitrary_trace(rng: &mut Rng64, events: usize) -> Trace {
    let mut t = Trace::new();
    let n_labels = rng.gen_range_usize(0, 8);
    for i in 0..n_labels {
        t.intern_label(&format!("op.{i}/with,comma\"quote"));
    }
    let kinds = [
        EventKind::Malloc,
        EventKind::Free,
        EventKind::Read,
        EventKind::Write,
    ];
    let mem_kinds = [
        MemoryKind::Input,
        MemoryKind::Weight,
        MemoryKind::WeightGrad,
        MemoryKind::OptimizerState,
        MemoryKind::Activation,
        MemoryKind::ActivationGrad,
        MemoryKind::Workspace,
        MemoryKind::Other,
    ];
    let mut time = 0u64;
    for _ in 0..events {
        let dt_bits = rng.gen_range_usize(1, 30);
        time += rng.gen_below(1 << dt_bits);
        let op_label = if n_labels > 0 && rng.gen_bool() {
            Some(rng.gen_range_usize(0, n_labels) as u32)
        } else {
            None
        };
        let block_bits = rng.gen_range_usize(1, 40);
        let size_bits = rng.gen_range_usize(1, 33);
        let offset_bits = rng.gen_range_usize(1, 38);
        t.push(MemEvent {
            time_ns: time,
            kind: kinds[rng.gen_range_usize(0, kinds.len())],
            block: BlockId(rng.gen_below(1 << block_bits)),
            size: rng.gen_below(1 << size_bits) as usize,
            offset: rng.gen_below(1 << offset_bits) as usize,
            mem_kind: mem_kinds[rng.gen_range_usize(0, mem_kinds.len())],
            op_label,
        });
        if rng.gen_range_usize(0, 20) == 0 {
            t.push_marker(Marker {
                time_ns: time,
                event_index: t.len(),
                label: format!("marker:{time}"),
            });
        }
    }
    t
}

#[test]
fn json_round_trip_is_lossless_for_arbitrary_traces() {
    let mut rng = Rng64::seed_from_u64(0x9_1517_2021);
    for case in 0..25 {
        let events = rng.gen_range_usize(0, 400);
        let t = arbitrary_trace(&mut rng, events);
        let mut buf = Vec::new();
        write_json(&t, &mut buf).unwrap();
        let back = read_json(&buf[..]).unwrap();
        assert_eq!(back, t, "JSON round trip diverged (case {case})");
    }
}

#[test]
fn store_round_trip_is_lossless_for_arbitrary_traces() {
    let mut rng = Rng64::seed_from_u64(0x5107_7e57);
    for case in 0..25 {
        let events = rng.gen_range_usize(0, 400);
        let chunk = rng.gen_range_usize(1, 64);
        let t = arbitrary_trace(&mut rng, events);
        let mut bytes = Vec::new();
        write_store_chunked(&t, &mut bytes, chunk).unwrap();
        let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
        let back = r.read_trace().unwrap();
        assert_eq!(
            back, t,
            "store round trip diverged (case {case}, chunk {chunk})"
        );
    }
}

fn profiled_trace() -> Trace {
    profile(&ProfileConfig::mlp_case_study(8)).unwrap().trace
}

fn store_of(t: &Trace, chunk: usize) -> StoreReader<Cursor<Vec<u8>>> {
    let mut bytes = Vec::new();
    write_store_chunked(t, &mut bytes, chunk).unwrap();
    StoreReader::new(Cursor::new(bytes)).unwrap()
}

#[test]
fn analyses_from_store_are_bit_identical_to_in_memory() {
    let t = profiled_trace();
    let mut r = store_of(&t, 512);

    let ati_mem = AtiDataset::from_trace(&t);
    assert_eq!(ati_from_store(&mut r).unwrap(), ati_mem);

    let criteria = OutlierCriteria {
        min_ati_ns: 1_000,
        min_size_bytes: 1_000,
    };
    assert_eq!(
        outliers_from_store(&mut r, criteria).unwrap(),
        sift(&ati_mem, criteria)
    );

    assert_eq!(
        breakdown_from_store("w", &mut r).unwrap(),
        BreakdownRow::from_trace("w", &t)
    );

    let end = t.end_time_ns();
    assert_eq!(
        gantt_from_store(&mut r, 0, end).unwrap(),
        gantt_rects(&t, 0, end)
    );
}

#[test]
fn full_query_is_thread_count_invariant_on_profiled_trace() {
    let t = profiled_trace();
    for threads in [1, 4] {
        let mut r = store_of(&t, 256);
        let q = r.query(&Predicate::any(), threads).unwrap();
        assert_eq!(q.events, t.events(), "threads={threads}");
        assert_eq!(q.stats.chunks_pruned, 0);
    }
}

#[test]
fn narrow_time_query_decodes_under_half_the_chunks() {
    let t = profiled_trace();
    let mut r = store_of(&t, 32);
    let total = r.num_chunks();
    assert!(
        total >= 20,
        "need many chunks for a meaningful test, got {total}"
    );

    // a window covering <10% of the trace's time span
    let end = t.end_time_ns();
    let lo = end / 2;
    let hi = lo + end / 20; // 5% of the span
    let before = r.chunks_decoded();
    let q = r
        .query(&Predicate::any().with_time_range(lo, hi), 1)
        .unwrap();
    assert_eq!(r.chunks_decoded() - before, q.stats.chunks_decoded as u64);
    assert!(
        q.stats.chunks_decoded * 2 < total,
        "time window of 5% decoded {}/{} chunks",
        q.stats.chunks_decoded,
        total
    );
    // and it found the right events
    let expect: Vec<MemEvent> = t
        .events()
        .iter()
        .filter(|e| e.time_ns >= lo && e.time_ns <= hi)
        .cloned()
        .collect();
    assert_eq!(q.events, expect);
    assert!(!q.events.is_empty(), "window should not be empty");
}

#[test]
fn store_is_at_least_5x_smaller_than_json() {
    let t = profiled_trace();
    let json_len = json_string(&t).len();
    let mut bytes = Vec::new();
    pinpoint::store::write_store(&t, &mut bytes).unwrap();
    let ratio = json_len as f64 / bytes.len() as f64;
    assert!(
        ratio >= 5.0,
        "compression ratio vs JSON is only {ratio:.2}x ({json_len} -> {})",
        bytes.len()
    );
}
