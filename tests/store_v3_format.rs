//! Property tests for format v3: adaptive per-chunk column encodings,
//! finer zone maps, and the zero-alloc batched decode path.
//!
//! The invariants under test, from the hardware-fast-decode issue:
//!
//! 1. **Format equivalence** — the same trace written as v1, v2, and v3
//!    reads back bit-identically (events, labels, query results), at
//!    every thread count.
//! 2. **Adaptive encodings round-trip** — seeded random traces survive
//!    the v3 encode/decode cycle exactly, whatever mix of plain / RLE /
//!    bit-packed / delta-of-delta columns the cost rule picks.
//! 3. **v3 is smaller than v2** on realistic traces (that is the point
//!    of the adaptive encodings).
//! 4. **Op-label pushdown is sound and sharp** — label queries return
//!    exactly the brute-force filter of the trace, and on v3 stores the
//!    per-chunk label bitsets prune chunks the v2 zone maps could not.
//! 5. **Warm scans allocate nothing** — once the reader's scratch pool
//!    has grown to the largest chunk, repeating a scan leaves the
//!    realloc counter untouched.

use pinpoint::store::{
    chunk_encoding_tags, write_store_chunked, write_store_chunked_v1, write_store_chunked_v2,
    Predicate, StoreReader, TAG_DOD, TAG_RLE,
};
use pinpoint::tensor::rng::Rng64;
use pinpoint::trace::{BlockId, EventKind, MemEvent, MemoryKind, Trace};
use std::io::Cursor;

const CHUNK_EVENTS: usize = 512;

const KINDS: [EventKind; 4] = [
    EventKind::Malloc,
    EventKind::Free,
    EventKind::Read,
    EventKind::Write,
];
const MEM_KINDS: [MemoryKind; 8] = [
    MemoryKind::Input,
    MemoryKind::Weight,
    MemoryKind::WeightGrad,
    MemoryKind::OptimizerState,
    MemoryKind::Activation,
    MemoryKind::ActivationGrad,
    MemoryKind::Workspace,
    MemoryKind::Other,
];

/// A seeded trace exercising every column regime the cost rule can meet:
/// jittered-regular and bursty timestamps, small-domain and huge values,
/// constant runs, and op labels that cluster into distinct chunks.
fn random_trace(seed: u64, n: usize) -> Trace {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = Trace::new();
    let labels: Vec<u32> = (0..6).map(|i| t.intern_label(&format!("op_{i}"))).collect();
    let mut time = 0u64;
    for i in 0..n {
        // regimes rotate every ~1.5 chunks so chunk contents differ
        let regime = (i / (CHUNK_EVENTS + CHUNK_EVENTS / 2)) % 4;
        time += match regime {
            0 => 100_000 + (i as u64 * 37) % 11, // jittered-regular: DOD bait
            1 => 0,                              // bursts of identical stamps: RLE bait
            2 => rng.gen_range_usize(1, 1 << 20) as u64, // noisy: plain bait
            _ => rng.gen_range_usize(1, 7) as u64, // tiny deltas: pack bait
        };
        let kind = KINDS[rng.gen_range_usize(0, KINDS.len())];
        let block = BlockId(rng.gen_range_usize(0, 64) as u64);
        let size = match regime {
            1 => 4096, // constant column
            _ => rng.gen_range_usize(1, 1 << 28),
        };
        let offset = rng.gen_range_usize(0, 1 << 30);
        let mem_kind = MEM_KINDS[rng.gen_range_usize(0, MEM_KINDS.len())];
        // labels cluster: each regime window uses one label, and only
        // some events carry it — so per-chunk label bitsets are sparse
        let op = if rng.gen_bool() {
            Some(labels[regime + seed as usize % 2])
        } else {
            None
        };
        t.record(time, kind, block, size, offset, mem_kind, op);
    }
    t
}

fn store_bytes(t: &Trace, version: u8) -> Vec<u8> {
    let mut bytes = Vec::new();
    match version {
        1 => write_store_chunked_v1(t, &mut bytes, CHUNK_EVENTS).unwrap(),
        2 => write_store_chunked_v2(t, &mut bytes, CHUNK_EVENTS).unwrap(),
        3 => write_store_chunked(t, &mut bytes, CHUNK_EVENTS).unwrap(),
        _ => unreachable!(),
    };
    assert_eq!(bytes[4], version);
    bytes
}

#[test]
fn every_format_reads_the_same_trace_and_answers_queries_identically() {
    for seed in 0..4u64 {
        let t = random_trace(seed, 3 * CHUNK_EVENTS + 100);
        let stores: Vec<Vec<u8>> = [1u8, 2, 3].iter().map(|&v| store_bytes(&t, v)).collect();
        assert!(
            stores[2].len() < stores[1].len(),
            "seed {seed}: v3 ({}) must be smaller than v2 ({})",
            stores[2].len(),
            stores[1].len()
        );

        // full event stream: bit-identical across formats
        for (v, bytes) in [1, 2, 3].iter().zip(&stores) {
            let mut r = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
            let back = r.read_trace().unwrap();
            assert_eq!(back.events(), t.events(), "seed {seed}: v{v} events");
            assert_eq!(back.labels(), t.labels(), "seed {seed}: v{v} labels");
        }

        // pushdown queries: same answers across formats AND thread
        // counts, and always the brute-force filter of the raw events
        let preds = [
            Predicate::any().with_time_range(t.events()[CHUNK_EVENTS].time_ns, u64::MAX),
            Predicate::any().with_kind(EventKind::Malloc),
            Predicate::any().with_min_size(1 << 20),
            Predicate::any().with_max_size(8192),
            Predicate::any().with_offset_range(0, 1 << 24),
            Predicate::any().with_op_label(0),
            Predicate::any()
                .with_op_label(1)
                .with_kind(EventKind::Write)
                .with_max_size(1 << 24),
        ];
        for (pi, pred) in preds.iter().enumerate() {
            let brute: Vec<MemEvent> = t
                .events()
                .iter()
                .filter(|e| pred.matches_event(e))
                .cloned()
                .collect();
            for (v, bytes) in [1, 2, 3].iter().zip(&stores) {
                for threads in [1, 4] {
                    let mut r = StoreReader::new(Cursor::new(bytes.clone())).unwrap();
                    let q = r.query(pred, threads).unwrap();
                    assert_eq!(
                        q.events, brute,
                        "seed {seed} pred {pi} v{v} threads {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn adaptive_encodings_round_trip_and_the_cost_rule_reacts_to_the_data() {
    let t = random_trace(1, 4 * CHUNK_EVENTS);
    let bytes = store_bytes(&t, 3);
    let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
    let n = r.num_chunks();
    let all: Vec<usize> = (0..n).collect();
    let payloads = r.read_chunk_batch(&all).unwrap();
    let mut used = [false; 4];
    for (i, p) in payloads.iter().enumerate() {
        let tags =
            chunk_encoding_tags(p).unwrap_or_else(|e| panic!("chunk {i}: unreadable tags: {e}"));
        for (c, &tag) in tags.iter().enumerate() {
            assert!(tag <= 3, "chunk {i} column {c}: unknown tag {tag}");
            used[tag as usize] = true;
            // delta-of-delta is defined for the time column only
            assert!(tag != TAG_DOD || c == 0, "chunk {i}: DOD on column {c}");
        }
    }
    // the fixture rotates through regimes crafted to bait different
    // encoders; a cost rule that always answers "plain" is a regression
    assert!(
        used.iter().filter(|&&u| u).count() >= 3,
        "only encodings {used:?} chosen across {n} chunks"
    );
    assert_eq!(r.read_trace().unwrap().events(), t.events());
}

#[test]
fn crafted_columns_pick_the_expected_encodings() {
    // jittered-regular timestamps (large non-repeating deltas, tiny
    // second differences) must pick DOD; a constant size column must
    // pick RLE
    let mut t = Trace::new();
    for i in 0..CHUNK_EVENTS as u64 {
        t.record(
            i * 100_000 + (i * 37) % 11,
            EventKind::Write,
            BlockId(i % 5),
            4096,
            0,
            MemoryKind::Activation,
            None,
        );
    }
    let bytes = store_bytes(&t, 3);
    let mut r = StoreReader::new(Cursor::new(bytes)).unwrap();
    let payloads = r.read_chunk_batch(&[0]).unwrap();
    let tags = chunk_encoding_tags(&payloads[0]).unwrap();
    assert_eq!(tags[0], TAG_DOD, "time column: {tags:?}");
    assert_eq!(tags[3], TAG_RLE, "size column: {tags:?}");
}

#[test]
fn op_label_pushdown_prunes_chunks_only_v3_zone_maps_can() {
    // label "hot" appears only in the first chunk; v3's per-chunk label
    // bitsets prune every other chunk, v2's coarser maps cannot
    let mut t = Trace::new();
    let hot = t.intern_label("hot");
    let cold = t.intern_label("cold");
    for i in 0..(4 * CHUNK_EVENTS) as u64 {
        let label = if i < CHUNK_EVENTS as u64 { hot } else { cold };
        t.record(
            i * 10,
            EventKind::Read,
            BlockId(i % 16),
            1024,
            (i * 64) as usize,
            MemoryKind::Weight,
            Some(label),
        );
    }
    let brute: Vec<MemEvent> = t
        .events()
        .iter()
        .filter(|e| e.op_label == Some(hot))
        .cloned()
        .collect();
    assert_eq!(brute.len(), CHUNK_EVENTS);

    let pred = Predicate::any().with_op_label(hot);
    for threads in [1, 4] {
        let mut v3 = StoreReader::new(Cursor::new(store_bytes(&t, 3))).unwrap();
        let q3 = v3.query(&pred, threads).unwrap();
        assert_eq!(q3.events, brute, "threads {threads}");
        assert_eq!(q3.stats.chunks_decoded, 1, "threads {threads}");
        assert_eq!(
            q3.stats.chunks_pruned_by_label, 3,
            "threads {threads}: v3 label bitsets must prune the cold chunks"
        );

        let mut v2 = StoreReader::new(Cursor::new(store_bytes(&t, 2))).unwrap();
        let q2 = v2.query(&pred, threads).unwrap();
        assert_eq!(q2.events, brute, "threads {threads}");
        assert_eq!(
            q2.stats.chunks_pruned_by_label, 0,
            "threads {threads}: pre-v3 maps have no label bits to prune with"
        );
    }
}

#[test]
fn warm_scans_do_not_grow_the_scratch_pool() {
    let t = random_trace(7, 6 * CHUNK_EVENTS);
    let mut r = StoreReader::new(Cursor::new(store_bytes(&t, 3))).unwrap();
    let pred = Predicate::any();
    for threads in [1, 4] {
        // cold pass: buffers grow to the largest chunk
        let cold = r.query(&pred, threads).unwrap();
        let warmed = r.decode_reallocs();
        assert!(warmed > 0, "cold scan must have grown fresh buffers");
        // warm passes: same scan, zero further allocations
        for pass in 0..2 {
            let warm = r.query(&pred, threads).unwrap();
            assert_eq!(warm.events, cold.events);
            assert_eq!(
                r.decode_reallocs(),
                warmed,
                "threads {threads} pass {pass}: warm scan allocated"
            );
        }
    }
}
